#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace resuformer {
namespace serve {

namespace {

/// Slow-trace capture policy: at most one exemplar per second and at most
/// this many files per server lifetime — a pathological load spike must not
/// turn the exemplar directory into a disk filler.
constexpr int64_t kSlowTraceMinGapNs = 1'000'000'000;
constexpr int kMaxSlowTraceFiles = 32;

/// The sliding stats window is split into this many rotating epochs (the
/// window is accurate to 1/kStatsEpochs of its span).
constexpr int kStatsEpochs = 10;

std::future<pipeline::ParseResponse> ReadyResponse(Status status,
                                                   int64_t request_id) {
  std::promise<pipeline::ParseResponse> promise;
  pipeline::ParseResponse response;
  response.status = std::move(status);
  response.request_id = request_id;
  promise.set_value(std::move(response));
  return promise.get_future();
}

void AppendStatsKey(std::string* out, bool first, const char* key) {
  out->append(first ? "\n    " : ",\n    ");
  AppendJsonQuoted(out, key);
  out->append(": ");
}

void AppendStatsInt(std::string* out, bool first, const char* key,
                    int64_t value) {
  AppendStatsKey(out, first, key);
  out->append(std::to_string(value));
}

}  // namespace

const char* ServerStateName(ServerState state) {
  switch (state) {
    case ServerState::kServing:
      return "ok";
    case ServerState::kDraining:
      return "draining";
    case ServerState::kStopped:
      return "unavailable";
  }
  return "unavailable";
}

ServerOptions ServerOptions::FromRuntime(const RuntimeOptions& rt) {
  ServerOptions options;
  options.max_batch = rt.serve_max_batch;
  options.max_queue_delay_ms = rt.serve_max_queue_delay_ms;
  options.queue_capacity = rt.serve_queue_capacity;
  options.workers = rt.serve_workers;
  options.stats_window_ms = rt.serve_stats_window_ms;
  options.slow_trace_us = rt.serve_slow_trace_us;
  options.slow_trace_dir = rt.serve_slow_trace_dir;
  return options;
}

Status ServerOptions::Validate() const {
  if (max_batch < 1) {
    return Status::InvalidArgument("ServerOptions.max_batch must be >= 1, got " +
                                   std::to_string(max_batch));
  }
  if (max_queue_delay_ms < 1) {
    return Status::InvalidArgument(
        "ServerOptions.max_queue_delay_ms must be >= 1, got " +
        std::to_string(max_queue_delay_ms));
  }
  if (queue_capacity < 1) {
    return Status::InvalidArgument(
        "ServerOptions.queue_capacity must be >= 1, got " +
        std::to_string(queue_capacity));
  }
  if (workers < 1) {
    return Status::InvalidArgument("ServerOptions.workers must be >= 1, got " +
                                   std::to_string(workers));
  }
  if (stats_window_ms < 10) {
    return Status::InvalidArgument(
        "ServerOptions.stats_window_ms must be >= 10, got " +
        std::to_string(stats_window_ms));
  }
  if (slow_trace_us < 0) {
    return Status::InvalidArgument(
        "ServerOptions.slow_trace_us must be >= 0, got " +
        std::to_string(slow_trace_us));
  }
  return Status::OK();
}

ParseServer::ParseServer(const pipeline::ResuFormerPipeline* pipeline,
                         const ServerOptions& options)
    : pipeline_(pipeline),
      options_(options),
      start_ns_(trace::NowNs()),
      // Seeded so the very first capture passes the min-gap check without
      // the subtraction underflowing (NowNs starts near 0).
      last_slow_capture_ns_(-kSlowTraceMinGapNs) {
  RF_CHECK(pipeline_ != nullptr);
  const Status valid = options_.Validate();
  RF_CHECK(valid.ok()) << "ParseServer: " << valid.ToString();
  const int64_t window_ns =
      static_cast<int64_t>(options_.stats_window_ms) * 1'000'000;
  rolling_e2e_ = std::make_unique<metrics::RollingHistogram>(
      kStatsEpochs, window_ns / kStatsEpochs);
  rolling_queue_wait_ = std::make_unique<metrics::RollingHistogram>(
      kStatsEpochs, window_ns / kStatsEpochs);
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  queue_depth_gauge_ = registry.GetGauge("serve.queue_depth");
  requests_counter_ = registry.GetCounter("serve.requests");
  batches_counter_ = registry.GetCounter("serve.batches");
  rejected_queue_full_ = registry.GetCounter("serve.rejected.queue_full");
  rejected_deadline_ = registry.GetCounter("serve.rejected.deadline");
  rejected_unavailable_ = registry.GetCounter("serve.rejected.unavailable");
  slow_traces_counter_ = registry.GetCounter("serve.slow_traces");
  batch_size_hist_ = registry.GetHistogram("serve.batch_size");
  queue_wait_hist_ = registry.GetHistogram("serve.queue_wait_us");
  e2e_hist_ = registry.GetHistogram("serve.e2e_us");

  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ParseServer::~ParseServer() { Shutdown(); }

std::future<pipeline::ParseResponse> ParseServer::Submit(
    pipeline::ParseRequest request) {
  requests_counter_->Increment();
  // Relaxed: the id only needs to be unique and monotonic; nothing is
  // published through it. Assigned before any rejection check so rejected
  // responses are correlatable too.
  const int64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  request.request_id = request_id;
  Pending pending;
  pending.request = std::move(request);
  pending.request_id = request_id;
  pending.admit_ns = trace::NowNs();
  pending.admit_tp = std::chrono::steady_clock::now();
  std::future<pipeline::ParseResponse> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      rejected_unavailable_->Increment();
      return ReadyResponse(
          Status::Unavailable("parse server is shutting down"), request_id);
    }
    if (queue_.size() >= static_cast<size_t>(options_.queue_capacity)) {
      rejected_queue_full_->Increment();
      return ReadyResponse(
          Status::ResourceExhausted(
              "parse server queue is full (" +
              std::to_string(options_.queue_capacity) + " requests)"),
          request_id);
    }
    queue_.push_back(std::move(pending));
    queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();
  return future;
}

pipeline::ParseResponse ParseServer::ParseSync(pipeline::ParseRequest request) {
  return Submit(std::move(request)).get();
}

std::vector<ParseServer::Pending> ParseServer::NextBatch() {
  const auto delay = std::chrono::milliseconds(options_.max_queue_delay_ms);
  const size_t max_batch = static_cast<size_t>(options_.max_batch);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Park until there is anything to consider (or we are draining).
    queue_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // draining_ && empty: worker exits.

    // Flush immediately on a full batch, or flush whatever is queued when
    // draining — drain never waits out the delay timer.
    if (queue_.size() >= max_batch || draining_) break;

    // Otherwise wait until the oldest request's delay budget elapses; a
    // wakeup before then (new arrival, drain) re-evaluates the policy.
    const auto flush_at = queue_.front().admit_tp + delay;
    if (std::chrono::steady_clock::now() >= flush_at) break;
    queue_cv_.wait_until(lock, flush_at);
    // Loop re-evaluates the policy: new arrivals may fill the batch, drain
    // flushes immediately, timer expiry breaks above, or a sibling worker
    // emptied the queue and this one re-parks.
  }

  std::vector<Pending> batch;
  const size_t take = std::min(queue_.size(), max_batch);
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
  // A partial flush can leave more than max_batch behind (burst while this
  // worker slept): hand the remainder to a sibling immediately.
  if (!queue_.empty()) queue_cv_.notify_one();
  return batch;
}

void ParseServer::WorkerLoop() {
  for (;;) {
    std::vector<Pending> batch = NextBatch();
    if (batch.empty()) return;

    TRACE_SPAN("serve.batch");
    batches_counter_->Increment();
    const int64_t claim_ns = trace::NowNs();
    for (const Pending& p : batch) {
      // The rolling window is always live — the timestamps are already in
      // hand, so this is a few relaxed atomics, no clock read.
      rolling_queue_wait_->Record((claim_ns - p.admit_ns) / 1000, claim_ns);
    }
    if (metrics::MetricsRegistry::Enabled()) {
      batch_size_hist_->Record(static_cast<int64_t>(batch.size()));
      for (const Pending& p : batch) {
        queue_wait_hist_->Record((claim_ns - p.admit_ns) / 1000);
      }
    }

    std::vector<pipeline::ParseRequest> requests;
    requests.reserve(batch.size());
    for (Pending& p : batch) requests.push_back(std::move(p.request));
    std::vector<pipeline::ParseResponse> responses = pipeline_->Parse(requests);

    const int64_t done_ns = trace::NowNs();
    for (size_t i = 0; i < batch.size(); ++i) {
      if (responses[i].status.code() == StatusCode::kDeadlineExceeded) {
        rejected_deadline_->Increment();
      }
      const int64_t e2e_us = (done_ns - batch[i].admit_ns) / 1000;
      rolling_e2e_->Record(e2e_us, done_ns);  // always live, see above
      if (metrics::MetricsRegistry::Enabled()) {
        e2e_hist_->Record(e2e_us);
      }
      if (options_.slow_trace_us > 0 && e2e_us >= options_.slow_trace_us) {
        // Captured before the promise resolves so an observer that has seen
        // the response can rely on the exemplar existing (tests, ops
        // tooling). The request is already past its latency budget and
        // captures are rate-limited, so the file write cost is acceptable.
        MaybeCaptureSlowTrace(batch[i].request_id, batch[i].admit_ns,
                              done_ns);
      }
      batch[i].promise.set_value(std::move(responses[i]));
    }
  }
}

void ParseServer::MaybeCaptureSlowTrace(int64_t request_id, int64_t admit_ns,
                                        int64_t done_ns) {
  // Relaxed loads/CAS throughout: the limiter is advisory — two workers
  // racing it can at worst write one extra exemplar.
  if (slow_traces_started_.load(std::memory_order_relaxed) >=
      kMaxSlowTraceFiles) {
    return;
  }
  // relaxed: the min-gap limiter is advisory; no memory is published
  // through this pair, the CAS only elects one capturing worker.
  int64_t last = last_slow_capture_ns_.load(std::memory_order_relaxed);
  if (done_ns - last < kSlowTraceMinGapNs) return;
  if (!last_slow_capture_ns_.compare_exchange_strong(
          // relaxed: the CAS only elects a capturing worker (see above).
          last, done_ns, std::memory_order_relaxed)) {
    return;  // a sibling worker claimed this capture slot
  }
  if (slow_traces_started_.fetch_add(1, std::memory_order_relaxed) >=
      kMaxSlowTraceFiles) {
    return;
  }

  // File I/O runs on the worker thread, outside every lock (the batch's
  // promises are still pending, but this path is rate-limited to once per
  // second and only fires for requests already past their budget).
  std::error_code ec;
  std::filesystem::create_directories(options_.slow_trace_dir, ec);
  if (ec) {
    RF_LOG(Warning) << "slow-trace capture: cannot create "
                    << options_.slow_trace_dir << ": " << ec.message();
    return;
  }
  const std::string path = options_.slow_trace_dir + "/slow-req-" +
                           std::to_string(request_id) + "-" +
                           std::to_string((done_ns - admit_ns) / 1000) +
                           "us.json";
  const Status written = trace::WriteChromeTraceJson(
      path, trace::TraceRecorder::Global().CollectWindow(admit_ns, done_ns));
  WarnIfError(written, "slow-trace capture");
  if (written.ok()) slow_traces_counter_->Increment();
}

void ParseServer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      draining_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    // Workers flush everything before exiting (NextBatch only returns
    // empty when draining with an empty queue), so nothing is lost.
    std::lock_guard<std::mutex> lock(mu_);
    RF_DCHECK(queue_.empty());
    stopped_ = true;
  });
}

int64_t ParseServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

ServerState ParseServer::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return ServerState::kStopped;
  return draining_ ? ServerState::kDraining : ServerState::kServing;
}

int64_t ParseServer::uptime_ns() const { return trace::NowNs() - start_ns_; }

std::string ParseServer::StatsJson() const {
  const int64_t now_ns = trace::NowNs();
  const metrics::RollingHistogram::WindowSnapshot e2e_win =
      rolling_e2e_->Window(now_ns);
  const metrics::RollingHistogram::WindowSnapshot wait_win =
      rolling_queue_wait_->Window(now_ns);

  std::string out = "{\n  \"server\": {";
  AppendStatsInt(&out, true, "uptime_us", (now_ns - start_ns_) / 1000);
  AppendStatsKey(&out, false, "state");
  AppendJsonQuoted(&out, ServerStateName(state()));
  AppendStatsInt(&out, false, "queue_depth", queue_depth());
  AppendStatsInt(&out, false, "workers", options_.workers);
  AppendStatsInt(&out, false, "max_batch", options_.max_batch);
  AppendStatsInt(&out, false, "requests", requests_counter_->value());
  AppendStatsInt(&out, false, "batches", batches_counter_->value());
  AppendStatsInt(&out, false, "rejected_queue_full",
                 rejected_queue_full_->value());
  AppendStatsInt(&out, false, "rejected_deadline",
                 rejected_deadline_->value());
  AppendStatsInt(&out, false, "rejected_unavailable",
                 rejected_unavailable_->value());
  AppendStatsInt(&out, false, "slow_traces", slow_traces_counter_->value());
  // Cumulative e2e needs enable_metrics; the window rows below are always
  // live (see the class comment).
  AppendStatsInt(&out, false, "e2e_count", e2e_hist_->count());
  AppendStatsInt(&out, false, "e2e_p50_us", e2e_hist_->ApproxPercentile(0.5));
  AppendStatsInt(&out, false, "e2e_p99_us",
                 e2e_hist_->ApproxPercentile(0.99));
  AppendStatsInt(&out, false, "window_ms", options_.stats_window_ms);
  AppendStatsInt(&out, false, "window_e2e_count", e2e_win.count);
  AppendStatsInt(&out, false, "window_e2e_p50_us", e2e_win.p50);
  AppendStatsInt(&out, false, "window_e2e_p99_us", e2e_win.p99);
  AppendStatsInt(&out, false, "window_queue_wait_p50_us", wait_win.p50);
  AppendStatsInt(&out, false, "window_queue_wait_p99_us", wait_win.p99);
  out += "\n  },\n  \"metrics\": ";
  out += metrics::MetricsRegistry::Global().Snapshot().ToJson();
  out += "\n}";
  return out;
}

std::string ParseServer::StatsPrometheus() const {
  const int64_t now_ns = trace::NowNs();
  const metrics::RollingHistogram::WindowSnapshot e2e_win =
      rolling_e2e_->Window(now_ns);
  const metrics::RollingHistogram::WindowSnapshot wait_win =
      rolling_queue_wait_->Window(now_ns);
  std::string out =
      metrics::MetricsRegistry::Global().Snapshot().ToPrometheusText();
  const ServerState st = state();
  char line[128];
  std::snprintf(line, sizeof(line),
                "# TYPE resuformer_serve_uptime_seconds gauge\n"
                "resuformer_serve_uptime_seconds %.3f\n",
                static_cast<double>(now_ns - start_ns_) / 1e9);
  out += line;
  out += "# TYPE resuformer_serve_draining gauge\n";
  out += "resuformer_serve_draining ";
  out += st == ServerState::kServing ? "0\n" : "1\n";
  out += "# TYPE resuformer_serve_window_e2e_p50_us gauge\n";
  out += "resuformer_serve_window_e2e_p50_us " + std::to_string(e2e_win.p50) +
         "\n";
  out += "# TYPE resuformer_serve_window_e2e_p99_us gauge\n";
  out += "resuformer_serve_window_e2e_p99_us " + std::to_string(e2e_win.p99) +
         "\n";
  out += "# TYPE resuformer_serve_window_queue_wait_p99_us gauge\n";
  out += "resuformer_serve_window_queue_wait_p99_us " +
         std::to_string(wait_win.p99) + "\n";
  return out;
}

}  // namespace serve
}  // namespace resuformer
