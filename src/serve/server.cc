#include "serve/server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/trace.h"

namespace resuformer {
namespace serve {

namespace {

std::future<pipeline::ParseResponse> ReadyResponse(Status status) {
  std::promise<pipeline::ParseResponse> promise;
  pipeline::ParseResponse response;
  response.status = std::move(status);
  promise.set_value(std::move(response));
  return promise.get_future();
}

}  // namespace

ServerOptions ServerOptions::FromRuntime(const RuntimeOptions& rt) {
  ServerOptions options;
  options.max_batch = rt.serve_max_batch;
  options.max_queue_delay_ms = rt.serve_max_queue_delay_ms;
  options.queue_capacity = rt.serve_queue_capacity;
  options.workers = rt.serve_workers;
  return options;
}

Status ServerOptions::Validate() const {
  if (max_batch < 1) {
    return Status::InvalidArgument("ServerOptions.max_batch must be >= 1, got " +
                                   std::to_string(max_batch));
  }
  if (max_queue_delay_ms < 1) {
    return Status::InvalidArgument(
        "ServerOptions.max_queue_delay_ms must be >= 1, got " +
        std::to_string(max_queue_delay_ms));
  }
  if (queue_capacity < 1) {
    return Status::InvalidArgument(
        "ServerOptions.queue_capacity must be >= 1, got " +
        std::to_string(queue_capacity));
  }
  if (workers < 1) {
    return Status::InvalidArgument("ServerOptions.workers must be >= 1, got " +
                                   std::to_string(workers));
  }
  return Status::OK();
}

ParseServer::ParseServer(const pipeline::ResuFormerPipeline* pipeline,
                         const ServerOptions& options)
    : pipeline_(pipeline), options_(options) {
  RF_CHECK(pipeline_ != nullptr);
  const Status valid = options_.Validate();
  RF_CHECK(valid.ok()) << "ParseServer: " << valid.ToString();
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  queue_depth_gauge_ = registry.GetGauge("serve.queue_depth");
  requests_counter_ = registry.GetCounter("serve.requests");
  batches_counter_ = registry.GetCounter("serve.batches");
  rejected_queue_full_ = registry.GetCounter("serve.rejected.queue_full");
  rejected_deadline_ = registry.GetCounter("serve.rejected.deadline");
  rejected_unavailable_ = registry.GetCounter("serve.rejected.unavailable");
  batch_size_hist_ = registry.GetHistogram("serve.batch_size");
  queue_wait_hist_ = registry.GetHistogram("serve.queue_wait_us");
  e2e_hist_ = registry.GetHistogram("serve.e2e_us");

  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ParseServer::~ParseServer() { Shutdown(); }

std::future<pipeline::ParseResponse> ParseServer::Submit(
    pipeline::ParseRequest request) {
  requests_counter_->Increment();
  Pending pending;
  pending.request = std::move(request);
  pending.admit_ns = trace::NowNs();
  pending.admit_tp = std::chrono::steady_clock::now();
  std::future<pipeline::ParseResponse> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      rejected_unavailable_->Increment();
      return ReadyResponse(
          Status::Unavailable("parse server is shutting down"));
    }
    if (queue_.size() >= static_cast<size_t>(options_.queue_capacity)) {
      rejected_queue_full_->Increment();
      return ReadyResponse(Status::ResourceExhausted(
          "parse server queue is full (" +
          std::to_string(options_.queue_capacity) + " requests)"));
    }
    queue_.push_back(std::move(pending));
    queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();
  return future;
}

pipeline::ParseResponse ParseServer::ParseSync(pipeline::ParseRequest request) {
  return Submit(std::move(request)).get();
}

std::vector<ParseServer::Pending> ParseServer::NextBatch() {
  const auto delay = std::chrono::milliseconds(options_.max_queue_delay_ms);
  const size_t max_batch = static_cast<size_t>(options_.max_batch);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Park until there is anything to consider (or we are draining).
    queue_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // draining_ && empty: worker exits.

    // Flush immediately on a full batch, or flush whatever is queued when
    // draining — drain never waits out the delay timer.
    if (queue_.size() >= max_batch || draining_) break;

    // Otherwise wait until the oldest request's delay budget elapses; a
    // wakeup before then (new arrival, drain) re-evaluates the policy.
    const auto flush_at = queue_.front().admit_tp + delay;
    if (std::chrono::steady_clock::now() >= flush_at) break;
    queue_cv_.wait_until(lock, flush_at);
    // Loop re-evaluates the policy: new arrivals may fill the batch, drain
    // flushes immediately, timer expiry breaks above, or a sibling worker
    // emptied the queue and this one re-parks.
  }

  std::vector<Pending> batch;
  const size_t take = std::min(queue_.size(), max_batch);
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
  // A partial flush can leave more than max_batch behind (burst while this
  // worker slept): hand the remainder to a sibling immediately.
  if (!queue_.empty()) queue_cv_.notify_one();
  return batch;
}

void ParseServer::WorkerLoop() {
  for (;;) {
    std::vector<Pending> batch = NextBatch();
    if (batch.empty()) return;

    TRACE_SPAN("serve.batch");
    batches_counter_->Increment();
    const int64_t claim_ns = trace::NowNs();
    if (metrics::MetricsRegistry::Enabled()) {
      batch_size_hist_->Record(static_cast<int64_t>(batch.size()));
      for (const Pending& p : batch) {
        queue_wait_hist_->Record((claim_ns - p.admit_ns) / 1000);
      }
    }

    std::vector<pipeline::ParseRequest> requests;
    requests.reserve(batch.size());
    for (Pending& p : batch) requests.push_back(std::move(p.request));
    std::vector<pipeline::ParseResponse> responses = pipeline_->Parse(requests);

    const int64_t done_ns = trace::NowNs();
    for (size_t i = 0; i < batch.size(); ++i) {
      if (responses[i].status.code() == StatusCode::kDeadlineExceeded) {
        rejected_deadline_->Increment();
      }
      if (metrics::MetricsRegistry::Enabled()) {
        e2e_hist_->Record((done_ns - batch[i].admit_ns) / 1000);
      }
      batch[i].promise.set_value(std::move(responses[i]));
    }
  }
}

void ParseServer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      draining_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    // Workers flush everything before exiting (NextBatch only returns
    // empty when draining with an empty queue), so nothing is lost.
    std::lock_guard<std::mutex> lock(mu_);
    RF_DCHECK(queue_.empty());
  });
}

int64_t ParseServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

}  // namespace serve
}  // namespace resuformer
