#include "serve/framing.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace resuformer {
namespace serve {

namespace {

// 4 (length) + 1 (kind) + 4 (deadline_ms), written/read as one block so a
// frame costs two syscalls, not four.
constexpr size_t kHeaderBytes = 9;

void PutU32Le(unsigned char* out, uint32_t v) {
  out[0] = static_cast<unsigned char>(v);
  out[1] = static_cast<unsigned char>(v >> 8);
  out[2] = static_cast<unsigned char>(v >> 16);
  out[3] = static_cast<unsigned char>(v >> 24);
}

uint32_t GetU32Le(const unsigned char* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

/// Writes exactly `count` bytes, retrying short writes and EINTR.
[[nodiscard]] Status WriteAll(int fd, const void* data, size_t count) {
  const char* p = static_cast<const char*>(data);
  while (count > 0) {
    const ssize_t n = ::write(fd, p, count);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write: ") + std::strerror(errno));
    }
    p += n;
    count -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `count` bytes. `*eof_at_start` reports a clean EOF before
/// the first byte; EOF mid-block is an IoError (truncated frame).
[[nodiscard]] Status ReadAll(int fd, void* data, size_t count,
                             bool* eof_at_start) {
  if (eof_at_start != nullptr) *eof_at_start = false;
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < count) {
    const ssize_t n = ::read(fd, p + got, count - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && eof_at_start != nullptr) {
        *eof_at_start = true;
        return Status::NotFound("peer closed the connection");
      }
      return Status::IoError("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(frame.payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte frame limit");
  }
  unsigned char header[kHeaderBytes];
  PutU32Le(header, static_cast<uint32_t>(frame.payload.size()));
  header[4] = static_cast<unsigned char>(frame.kind);
  PutU32Le(header + 5, frame.deadline_ms);
  RF_RETURN_NOT_OK(WriteAll(fd, header, sizeof(header)));
  if (!frame.payload.empty()) {
    RF_RETURN_NOT_OK(WriteAll(fd, frame.payload.data(),
                              frame.payload.size()));
  }
  return Status::OK();
}

Status ReadFrame(int fd, Frame* frame) {
  unsigned char header[kHeaderBytes];
  bool eof = false;
  RF_RETURN_NOT_OK(ReadAll(fd, header, sizeof(header), &eof));
  const uint32_t length = GetU32Le(header);
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame length prefix " + std::to_string(length) + " exceeds the " +
        std::to_string(kMaxFramePayload) + "-byte frame limit");
  }
  const uint8_t kind = header[4];
  if (kind > static_cast<uint8_t>(FrameKind::kErrorV2)) {
    return Status::InvalidArgument("unknown frame kind " +
                                   std::to_string(kind));
  }
  frame->kind = static_cast<FrameKind>(kind);
  frame->deadline_ms = GetU32Le(header + 5);
  frame->payload.resize(length);
  if (length > 0) {
    RF_RETURN_NOT_OK(ReadAll(fd, frame->payload.data(), length, nullptr));
  }
  return Status::OK();
}

std::string EncodeIdPayload(int64_t request_id, std::string body) {
  unsigned char prefix[8];
  const uint64_t id = static_cast<uint64_t>(request_id);
  PutU32Le(prefix, static_cast<uint32_t>(id));
  PutU32Le(prefix + 4, static_cast<uint32_t>(id >> 32));
  body.insert(0, reinterpret_cast<const char*>(prefix), sizeof(prefix));
  return body;
}

Status DecodeIdPayload(const std::string& payload, int64_t* request_id,
                       std::string* body) {
  if (payload.size() < 8) {
    return Status::InvalidArgument(
        "v2 payload of " + std::to_string(payload.size()) +
        " bytes is shorter than the 8-byte request-id prefix");
  }
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(payload.data());
  const uint64_t id = static_cast<uint64_t>(GetU32Le(p)) |
                      (static_cast<uint64_t>(GetU32Le(p + 4)) << 32);
  *request_id = static_cast<int64_t>(id);
  body->assign(payload, 8, payload.size() - 8);
  return Status::OK();
}

}  // namespace serve
}  // namespace resuformer
