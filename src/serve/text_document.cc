#include "serve/text_document.h"

#include <string_view>

#include "common/string_util.h"

namespace resuformer {
namespace serve {

namespace {

// Synthetic monospaced layout, matching the resumegen renderer's scale: US
// letter pages, ~10pt body text, glyph advance ~0.6em.
constexpr float kPageWidth = 612.0f;
constexpr float kPageHeight = 792.0f;
constexpr float kMargin = 54.0f;
constexpr float kFontSize = 10.0f;
constexpr float kLeading = 14.0f;
constexpr float kGlyphWidth = 6.0f;
constexpr float kWordGap = 6.0f;

}  // namespace

doc::Document DocumentFromText(const std::string& text) {
  doc::Document document;
  document.page_width = kPageWidth;
  document.page_height = kPageHeight;

  int page = 0;
  float y = kMargin;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string_view line(text.data() + start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    // A trailing newline produces a final empty "line"; skip it without
    // advancing the cursor.
    const bool last = end == text.size();
    if (!(last && line.empty())) {
      if (y + kLeading > kPageHeight - kMargin) {
        ++page;
        y = kMargin;
      }
      const std::vector<std::string> words = SplitString(line);
      if (!words.empty()) {
        doc::Sentence sentence;
        sentence.page = page;
        float x = kMargin;
        for (const std::string& word : words) {
          // Clamp long tokens at the right margin rather than wrapping:
          // a wrapped token would split one word across "lines" the text
          // never had.
          float advance = kGlyphWidth * static_cast<float>(word.size());
          if (x + advance > kPageWidth - kMargin) {
            advance = kPageWidth - kMargin - x;
            if (advance < kGlyphWidth) advance = kGlyphWidth;
          }
          doc::Token token;
          token.word = word;
          token.page = page;
          token.font_size = kFontSize;
          token.box = doc::BBox{x, y, x + advance, y + kFontSize};
          sentence.tokens.push_back(std::move(token));
          x += advance + kWordGap;
        }
        sentence.box = sentence.tokens.front().box;
        for (const doc::Token& t : sentence.tokens) {
          sentence.box = doc::Union(sentence.box, t.box);
        }
        document.sentences.push_back(std::move(sentence));
      }
      y += kLeading;
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  document.num_pages = page + 1;
  return document;
}

std::string DocumentToText(const doc::Document& document) {
  std::string out;
  for (const doc::Sentence& sentence : document.sentences) {
    if (!out.empty()) out.push_back('\n');
    out += sentence.Text();
  }
  return out;
}

}  // namespace serve
}  // namespace resuformer
