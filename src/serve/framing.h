#ifndef RESUFORMER_SERVE_FRAMING_H_
#define RESUFORMER_SERVE_FRAMING_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace resuformer {
namespace serve {

/// \brief The length-prefixed wire protocol the parse server speaks.
///
/// Every frame, both directions, is:
///
///   u32 LE payload length | u8 kind | u32 LE deadline_ms | payload bytes
///
/// `deadline_ms` is a request-side latency budget relative to server
/// receipt (0 = none); responses always carry 0. Requests are kParse
/// (payload = resume text, one visual line per text line) or kShutdown
/// (payload empty; asks the server to drain and exit). Responses are kOk
/// (payload = the ToPrettyString JSON of the parse, or empty for a
/// kShutdown ack) or kError (payload = the Status rendered as
/// "Code: message"). One connection carries any number of frames in
/// lockstep: the client writes a request, reads one response, repeats.
///
/// Protocol v2 (PR 9) adds the admin plane and request-id correlation on
/// top, with graceful degradation instead of a version handshake:
///  * kStats / kHealth are admin requests answered inline by the endpoint —
///    they never enter the admission queue, so they stay responsive under
///    full parse load. kStats with an empty payload returns the combined
///    server+metrics JSON (ParseServer::StatsJson); payload "prometheus"
///    returns the text exposition. kHealth returns kOk with payload
///    "ok" / "draining" / "unavailable".
///  * kParseV2 parses like kParse but is answered with kOkV2 / kErrorV2,
///    whose payloads are prefixed with the server-assigned request id
///    (EncodeIdPayload) for client-side correlation.
/// A v1 client never sends the new kinds and never sees them in a response;
/// a v1 server rejects them with InvalidArgument ("unknown frame kind"),
/// which a v2 client treats as "speak v1".
enum class FrameKind : uint8_t {
  kParse = 0,
  kOk = 1,
  kError = 2,
  kShutdown = 3,
  kStats = 4,
  kHealth = 5,
  kParseV2 = 6,
  kOkV2 = 7,
  kErrorV2 = 8,
};

struct Frame {
  FrameKind kind = FrameKind::kParse;
  uint32_t deadline_ms = 0;
  std::string payload;
};

/// Frames larger than this are refused on both ends — a corrupt or hostile
/// length prefix must not drive a multi-gigabyte allocation.
constexpr uint32_t kMaxFramePayload = 16u * 1024 * 1024;

/// Writes one frame, looping over short writes and EINTR. IoError on any
/// socket failure, InvalidArgument when the payload exceeds
/// kMaxFramePayload.
[[nodiscard]] Status WriteFrame(int fd, const Frame& frame);

/// Reads one frame. NotFound on clean EOF at a frame boundary (the peer
/// closed between frames — the normal end of a connection), IoError on a
/// mid-frame EOF or socket failure, InvalidArgument on an oversized length
/// prefix or unknown kind.
[[nodiscard]] Status ReadFrame(int fd, Frame* frame);

/// kOkV2/kErrorV2 payload layout: u64 LE request id | body bytes.
std::string EncodeIdPayload(int64_t request_id, std::string body);

/// Splits a v2 payload back into id + body. InvalidArgument when the
/// payload is shorter than the 8-byte id prefix.
[[nodiscard]] Status DecodeIdPayload(const std::string& payload,
                                     int64_t* request_id, std::string* body);

}  // namespace serve
}  // namespace resuformer

#endif  // RESUFORMER_SERVE_FRAMING_H_
