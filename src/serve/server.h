#ifndef RESUFORMER_SERVE_SERVER_H_
#define RESUFORMER_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/runtime_options.h"
#include "common/status.h"
#include "pipeline/pipeline.h"

namespace resuformer {
namespace serve {

/// Admission-queue policy knobs. Defaults mirror RuntimeOptions'
/// serve_* fields; FromRuntime copies them over so env overrides
/// (RESUFORMER_SERVE_*) flow through one struct.
struct ServerOptions {
  // Flush a micro-batch at this many requests...
  int max_batch = 8;
  // ...or when its oldest request has waited this long, whichever first.
  int max_queue_delay_ms = 5;
  // Admitted-but-unclaimed requests beyond this bound are rejected with
  // ResourceExhausted (fail-fast backpressure).
  int queue_capacity = 256;
  // Worker threads draining the queue. Each worker claims one micro-batch
  // at a time and parses it through the pipeline's batched entry point.
  int workers = 2;

  // Sliding window for the live p50/p99 the kStats admin frame reports for
  // e2e latency and queue wait. Split into 10 rotating epochs, so >= 10 ms.
  int stats_window_ms = 60'000;
  // A request whose e2e latency reaches this many microseconds has its span
  // window captured to `slow_trace_dir` as a Chrome-trace exemplar
  // (rate-limited to one per second, at most 32 files per server; counted
  // by serve.slow_traces). 0 disables capture. Captures only contain spans
  // when tracing (enable_tracing / RESUFORMER_TRACE) is on.
  int slow_trace_us = 0;
  std::string slow_trace_dir = "slow-traces";

  [[nodiscard]] static ServerOptions FromRuntime(const RuntimeOptions& rt);

  /// Every knob must be in range (batching knobs >= 1, stats_window_ms >=
  /// 10, slow_trace_us >= 0); the error names the offending parameter.
  [[nodiscard]] Status Validate() const;
};

/// Health states surfaced by the kHealth admin frame and StatsJson.
enum class ServerState {
  kServing,
  kDraining,
  kStopped,
};

/// Wire/JSON names: "ok", "draining", "unavailable".
const char* ServerStateName(ServerState state);

/// \brief The resume parse server: a long-lived admission queue that
/// coalesces concurrently-arriving ParseRequests into micro-batches under
/// a size x latency-deadline policy and parses them on N resident worker
/// threads.
///
/// Lifecycle: construction spawns the workers; Shutdown() (or the
/// destructor) stops admission, drains every queued request, and joins.
/// Drain is lossless by construction — a request either completes with a
/// parse, completes with a non-OK Status (DeadlineExceeded /
/// ResourceExhausted / Unavailable), or is flushed during drain; its
/// future ALWAYS becomes ready.
///
/// Batching policy: a worker claims min(queue depth, max_batch) requests
/// when either the queue holds a full batch or the oldest queued request
/// has waited max_queue_delay_ms. Workers park on a condition variable in
/// between — the admission loop never sleeps or does I/O while holding the
/// queue lock (enforced by rf_lint's blocking-in-critical-section rule).
///
/// Deadlines: a request whose deadline_ns expires while it waits in the
/// queue is answered DeadlineExceeded by the claiming worker (via the
/// pipeline's own deadline check) without being parsed; the worker itself
/// never dies — the next request in the batch proceeds normally.
///
/// Concurrency: multiple workers may parse batches concurrently. Each
/// worker calls the pipeline's batched Parse, which dispatches documents
/// over the global tensor ThreadPool; the pool's claim-or-inline semantics
/// make concurrent external dispatches safe (one worker's batch fans out,
/// the others run their documents inline).
///
/// Request identity: Submit assigns each request a process-monotonic id
/// (starting at 1) — rejected requests get one too, so every response
/// carries a correlatable ParseResponse::request_id. The id is annotated
/// onto the request's pipeline trace spans and prefixed onto kOkV2/kErrorV2
/// wire payloads.
///
/// Metrics (always-live counters/gauges; histograms need enable_metrics):
///   serve.queue_depth            gauge      queued requests right now
///   serve.requests               counter    admissions attempted
///   serve.batches                counter    micro-batches parsed
///   serve.rejected.queue_full    counter    ResourceExhausted rejections
///   serve.rejected.deadline      counter    DeadlineExceeded rejections
///   serve.rejected.unavailable   counter    submitted after shutdown
///   serve.slow_traces            counter    slow-trace exemplars written
///   serve.batch_size             histogram  requests per micro-batch
///   serve.queue_wait_us          histogram  admission -> batch claim
///   serve.e2e_us                 histogram  admission -> response ready
///
/// The sliding-window e2e / queue-wait percentiles (RollingHistogram) are
/// ALWAYS live, unlike the cumulative histograms: the worker loop already
/// holds the needed timestamps for deadline accounting, so recording costs
/// a few relaxed atomics and no clock read — the kStats admin surface stays
/// useful without enable_metrics.
class ParseServer {
 public:
  /// `pipeline` must outlive the server. Options must Validate().
  ParseServer(const pipeline::ResuFormerPipeline* pipeline,
              const ServerOptions& options);
  ~ParseServer();
  ParseServer(const ParseServer&) = delete;
  ParseServer& operator=(const ParseServer&) = delete;

  /// Admits one request. Returns a future that ALWAYS becomes ready:
  /// with the parse, or with ResourceExhausted (queue at capacity) /
  /// Unavailable (server shutting down) — both of those fail fast, the
  /// future is ready on return.
  [[nodiscard]] std::future<pipeline::ParseResponse> Submit(
      pipeline::ParseRequest request);

  /// Submit + wait: the synchronous convenience the CLI uses.
  [[nodiscard]] pipeline::ParseResponse ParseSync(
      pipeline::ParseRequest request);

  /// Graceful drain: stops admission (subsequent Submits fail with
  /// Unavailable), flushes every queued request into final micro-batches
  /// (no delay waiting), joins the workers. Idempotent; also called by the
  /// destructor.
  void Shutdown();

  /// Queued (admitted, unclaimed) requests right now. Test/ops visibility.
  int64_t queue_depth() const;

  /// Live health: serving, draining (Shutdown started), or stopped
  /// (Shutdown finished). Answers the kHealth admin frame.
  ServerState state() const;

  /// Nanoseconds since construction (trace::NowNs timebase).
  int64_t uptime_ns() const;

  /// The kStats admin payload: {"server": {uptime_us, state, queue_depth,
  /// workers, max_batch, requests, batches, rejected_*, slow_traces,
  /// cumulative e2e stats, window_ms, windowed e2e / queue-wait
  /// percentiles}, "metrics": <MetricsSnapshot::ToJson()>}. The "server"
  /// section leads and its keys are unique, so a flat first-occurrence
  /// scanner (the CLI stats table) needs no JSON parser.
  std::string StatsJson() const;

  /// Prometheus text exposition: the global snapshot plus server-plane
  /// gauges (uptime, draining flag, windowed percentiles).
  std::string StatsPrometheus() const;

  const ServerOptions& options() const { return options_; }

 private:
  struct Pending {
    pipeline::ParseRequest request;
    std::promise<pipeline::ParseResponse> promise;
    // Both clocks captured at admission: NowNs for metrics/deadlines,
    // steady_clock for the flush-timer wait.
    int64_t admit_ns = 0;
    std::chrono::steady_clock::time_point admit_tp;
    // Copy of request.request_id that survives the move into the pipeline.
    int64_t request_id = 0;
  };

  void WorkerLoop();
  /// Blocks until a micro-batch is ready under the flush policy (or drain
  /// flushes the remainder) and claims it. Empty result = queue drained and
  /// server shutting down: the worker exits.
  std::vector<Pending> NextBatch();

  /// Writes the [admit_ns, done_ns] span window of an over-threshold
  /// request to options_.slow_trace_dir (rate-limited + bounded; see
  /// ServerOptions::slow_trace_us).
  void MaybeCaptureSlowTrace(int64_t request_id, int64_t admit_ns,
                             int64_t done_ns);

  const pipeline::ResuFormerPipeline* pipeline_;
  const ServerOptions options_;
  const int64_t start_ns_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;   // guarded by mu_
  bool draining_ = false;       // guarded by mu_
  bool stopped_ = false;        // guarded by mu_; set when Shutdown finishes

  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;

  std::atomic<int64_t> next_request_id_{0};

  // Slow-trace rate limiting (MaybeCaptureSlowTrace).
  std::atomic<int64_t> last_slow_capture_ns_;
  std::atomic<int> slow_traces_started_{0};

  // Always-live sliding windows behind the kStats percentiles (see the
  // class comment). unique_ptr: sized from options at construction.
  std::unique_ptr<metrics::RollingHistogram> rolling_e2e_;
  std::unique_ptr<metrics::RollingHistogram> rolling_queue_wait_;

  // Stable instrument pointers, resolved once at construction.
  metrics::Gauge* queue_depth_gauge_;
  metrics::Counter* requests_counter_;
  metrics::Counter* batches_counter_;
  metrics::Counter* rejected_queue_full_;
  metrics::Counter* rejected_deadline_;
  metrics::Counter* rejected_unavailable_;
  metrics::Counter* slow_traces_counter_;
  metrics::Histogram* batch_size_hist_;
  metrics::Histogram* queue_wait_hist_;
  metrics::Histogram* e2e_hist_;
};

}  // namespace serve
}  // namespace resuformer

#endif  // RESUFORMER_SERVE_SERVER_H_
