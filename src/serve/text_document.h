#ifndef RESUFORMER_SERVE_TEXT_DOCUMENT_H_
#define RESUFORMER_SERVE_TEXT_DOCUMENT_H_

#include <string>

#include "doc/document.h"

namespace resuformer {
namespace serve {

/// \brief Builds a doc::Document from plain resume text — the serve wire
/// format, where a client has text but no PDF layout.
///
/// Each text line ("\n"-separated; a trailing "\r" is stripped) becomes one
/// visual line / doc::Sentence, and each whitespace-separated word becomes
/// a token with a synthetic monospaced bounding box: lines flow top-down at
/// a fixed leading inside US-letter pages and wrap to a new page when the
/// bottom margin is reached. Blank lines advance the cursor (paragraph
/// gaps) but produce no sentence. The geometry is deterministic — the same
/// text always produces the same Document, so serve-path parses are
/// reproducible and comparable against direct Parse calls.
doc::Document DocumentFromText(const std::string& text);

/// The inverse convenience for tests and clients that hold a rendered
/// Document (e.g. from resumegen): its sentences joined with "\n", each
/// sentence as its space-joined words. DocumentFromText(DocumentToText(d))
/// preserves sentence count and token text (not the original geometry).
std::string DocumentToText(const doc::Document& document);

}  // namespace serve
}  // namespace resuformer

#endif  // RESUFORMER_SERVE_TEXT_DOCUMENT_H_
