#ifndef RESUFORMER_SERVE_ENDPOINT_H_
#define RESUFORMER_SERVE_ENDPOINT_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "serve/server.h"

namespace resuformer {
namespace serve {

/// \brief Loopback TCP front end for a ParseServer: accepts connections on
/// 127.0.0.1 and speaks the framing.h protocol.
///
/// Each connection gets a handler thread that reads frames in lockstep:
/// kParse (payload = resume text) is turned into a doc::Document via
/// DocumentFromText, submitted through the ParseServer admission queue —
/// so concurrent connections coalesce into micro-batches — and answered
/// with kOk (ToPrettyString JSON) or kError (the Status). kParseV2 parses
/// identically but is answered with kOkV2/kErrorV2, whose payloads carry
/// the server-assigned request id (framing.h EncodeIdPayload). A non-zero
/// request deadline_ms becomes an absolute pipeline deadline relative to
/// receipt. kShutdown is acked with an empty kOk and flips the flag that
/// WaitForShutdownRequest blocks on; the caller then runs Stop() and
/// drains the ParseServer.
///
/// Admin frames bypass the admission queue entirely — the handler answers
/// them inline from ParseServer accessors, so stats/health stay responsive
/// while every worker is busy and the queue is full: kStats returns
/// StatsJson() (payload "prometheus" selects the text exposition) and
/// kHealth returns "ok" / "draining" / "unavailable".
///
/// The endpoint deliberately binds the loopback interface only — it is a
/// local daemon protocol, not an internet-facing service.
class SocketEndpoint {
 public:
  /// `server` must outlive the endpoint.
  explicit SocketEndpoint(ParseServer* server);
  ~SocketEndpoint();
  SocketEndpoint(const SocketEndpoint&) = delete;
  SocketEndpoint& operator=(const SocketEndpoint&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port), starts
  /// the accept thread, and returns the bound port.
  [[nodiscard]] Result<int> Start(int port);

  /// Blocks until a client sends kShutdown, RequestShutdown() is called,
  /// or Stop() is called.
  void WaitForShutdownRequest();

  /// Out-of-band graceful-drain trigger: unblocks WaitForShutdownRequest
  /// exactly like a client kShutdown frame. Lets a signal-watcher thread
  /// route SIGINT/SIGTERM into the same drain path.
  void RequestShutdown();

  /// Closes the listener, unblocks and joins every connection handler.
  /// Idempotent; also called by the destructor. In-flight requests already
  /// admitted to the ParseServer still complete (its drain handles them) —
  /// Stop only tears down the socket layer.
  void Stop();

  /// Bound port after a successful Start().
  int port() const { return port_; }

 private:
  struct Conn {
    int fd = -1;  // guarded by mu_; -1 once the handler has closed it
    std::thread thread;
  };

  void AcceptLoop();
  void HandleConnection(Conn* conn, int fd);

  ParseServer* server_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;  // guarded by mu_
  bool stopping_ = false;            // guarded by mu_
  // deque: handler threads hold stable Conn pointers across growth.
  std::deque<Conn> conns_;  // guarded by mu_ (appends); threads joined in Stop
  std::once_flag stop_once_;
};

}  // namespace serve
}  // namespace resuformer

#endif  // RESUFORMER_SERVE_ENDPOINT_H_
