#include "serve/endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/trace.h"
#include "serve/framing.h"
#include "serve/text_document.h"

namespace resuformer {
namespace serve {

namespace {

Status SysError(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

SocketEndpoint::SocketEndpoint(ParseServer* server) : server_(server) {
  RF_CHECK(server_ != nullptr);
}

SocketEndpoint::~SocketEndpoint() { Stop(); }

Result<int> SocketEndpoint::Start(int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535], got " +
                                   std::to_string(port));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return SysError("socket");
  const int one = 1;
  // Best effort: lets a restarted daemon rebind a port in TIME_WAIT.
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  // The sockaddr_in -> sockaddr cast below is the POSIX sockets calling
  // convention, not a payload-byte view.
  // rf-lint-allow(mmap-payload-cast): POSIX calling convention.
  const sockaddr* addr_ptr = reinterpret_cast<const sockaddr*>(&addr);
  if (::bind(listen_fd_, addr_ptr, sizeof(addr)) < 0) {
    const Status error = SysError("bind 127.0.0.1:" + std::to_string(port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return error;
  }
  if (::listen(listen_fd_, 64) < 0) {
    const Status error = SysError("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return error;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  // rf-lint-allow(mmap-payload-cast): POSIX calling convention, as above.
  sockaddr* bound_ptr = reinterpret_cast<sockaddr*>(&bound);
  if (::getsockname(listen_fd_, bound_ptr, &bound_len) < 0) {
    const Status error = SysError("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return error;
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void SocketEndpoint::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener shut down by Stop() (or a fatal socket error): exit.
      return;
    }
    Conn* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      conns_.emplace_back();
      conn = &conns_.back();
      conn->fd = fd;
    }
    conn->thread = std::thread([this, conn, fd] { HandleConnection(conn, fd); });
  }
}

void SocketEndpoint::HandleConnection(Conn* conn, int fd) {
  for (;;) {
    Frame request;
    const Status read = ReadFrame(fd, &request);
    if (!read.ok()) break;  // clean EOF, peer reset, or malformed frame

    Frame reply;
    switch (request.kind) {
      case FrameKind::kParse:
      case FrameKind::kParseV2: {
        const bool v2 = request.kind == FrameKind::kParseV2;
        pipeline::ParseRequest parse;
        parse.document = DocumentFromText(request.payload);
        if (request.deadline_ms > 0) {
          parse.deadline_ns =
              trace::NowNs() +
              static_cast<int64_t>(request.deadline_ms) * 1'000'000;
        }
        pipeline::ParseResponse response = server_->ParseSync(std::move(parse));
        if (response.ok()) {
          reply.kind = v2 ? FrameKind::kOkV2 : FrameKind::kOk;
          reply.payload =
              pipeline::ResuFormerPipeline::ToPrettyString(response.resume);
        } else {
          reply.kind = v2 ? FrameKind::kErrorV2 : FrameKind::kError;
          reply.payload = response.status.ToString();
        }
        if (v2) {
          reply.payload =
              EncodeIdPayload(response.request_id, std::move(reply.payload));
        }
        break;
      }
      // Admin frames are answered inline — never through the admission
      // queue — so stats/health stay responsive under full parse load.
      case FrameKind::kStats: {
        reply.kind = FrameKind::kOk;
        reply.payload = request.payload == "prometheus"
                            ? server_->StatsPrometheus()
                            : server_->StatsJson();
        break;
      }
      case FrameKind::kHealth: {
        reply.kind = FrameKind::kOk;
        reply.payload = ServerStateName(server_->state());
        break;
      }
      case FrameKind::kShutdown: {
        reply.kind = FrameKind::kOk;
        RequestShutdown();
        break;
      }
      default: {
        reply.kind = FrameKind::kError;
        reply.payload =
            Status::InvalidArgument("unexpected frame kind from client")
                .ToString();
        break;
      }
    }
    if (!WriteFrame(fd, reply).ok()) break;
  }
  // Hide the fd from Stop()'s shutdown pass before closing, so Stop never
  // touches a recycled descriptor.
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn->fd = -1;
  }
  ::close(fd);
}

void SocketEndpoint::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_ || stopping_; });
}

void SocketEndpoint::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void SocketEndpoint::Stop() {
  std::call_once(stop_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    shutdown_cv_.notify_all();
    if (listen_fd_ >= 0) {
      // Unblocks the accept() the accept thread is parked in.
      (void)::shutdown(listen_fd_, SHUT_RDWR);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Conn& conn : conns_) {
        // Unblocks handlers parked in ReadFrame; they then close their fd.
        if (conn.fd >= 0) (void)::shutdown(conn.fd, SHUT_RDWR);
      }
    }
    // The accept thread is joined, so conns_ no longer grows; handlers only
    // touch their own fd field (under mu_), never the thread handles.
    for (Conn& conn : conns_) {
      if (conn.thread.joinable()) conn.thread.join();
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  });
}

}  // namespace serve
}  // namespace resuformer
