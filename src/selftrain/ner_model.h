#ifndef RESUFORMER_SELFTRAIN_NER_MODEL_H_
#define RESUFORMER_SELFTRAIN_NER_MODEL_H_

#include <memory>
#include <vector>

#include "distant/auto_annotator.h"
#include "nn/embedding.h"
#include "nn/lstm.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "nn/transformer.h"
#include "text/wordpiece.h"

namespace resuformer {
namespace selftrain {

/// Hyper-parameters of the intra-block NER model (Section IV-B3's
/// "BERT+BiLSTM+MLP"; paper scale 12 layers / 768 hidden / LSTM 256).
struct NerModelConfig {
  int hidden = 32;
  int layers = 2;
  int num_heads = 4;
  int ffn = 64;
  float dropout = 0.1f;
  int vocab_size = 2000;
  int max_tokens = 120;
  int lstm_hidden = 24;
  int num_labels = doc::kNumEntityIobLabels;
  float encoder_lr = 1e-3f;  // paper: 1e-5 for BERT (scaled, see DESIGN.md)
  float head_lr = 2e-3f;     // paper: 1e-3 for BiLSTM/MLP
  float weight_decay = 0.01f;
  float grad_clip = 5.0f;
};

/// Word-level encoding: each word maps to its first WordPiece id (the
/// standard first-subtoken convention for BERT NER), truncated to
/// `max_tokens`.
std::vector<int> EncodeWordsForNer(const std::vector<std::string>& words,
                                   const text::WordPieceTokenizer& tokenizer,
                                   const NerModelConfig& config);

/// \brief Token classifier: Transformer encoder ("BERT") -> BiLSTM -> MLP
/// producing per-token label logits. Word-level, text-only (the paper's
/// intra-block model uses no layout features).
class NerModel : public nn::Module {
 public:
  NerModel(const NerModelConfig& config, Rng* rng);

  /// Contextual states [T, 2*lstm_hidden] (Transformer + BiLSTM output,
  /// before the MLP head). Exposed so AutoNER can reuse the backbone.
  Tensor ContextualStates(const std::vector<int>& token_ids,
                          Rng* dropout_rng) const;

  /// Logits [T, num_labels] for a word-id sequence.
  Tensor Logits(const std::vector<int>& token_ids, Rng* dropout_rng) const;

  /// Class probabilities (softmax over Logits; no autograd).
  Tensor Probabilities(const std::vector<int>& token_ids) const;

  /// Argmax labels (MLP head decodes independently per token).
  std::vector<int> Predict(const std::vector<int>& token_ids) const;

  /// Word-level prediction for arbitrarily long inputs: encodes each word
  /// to its first WordPiece id (the convention EncodeWordsForNer uses) and
  /// windows the sequence into consecutive non-overlapping chunks of at
  /// most max_tokens, predicting each chunk independently and
  /// concatenating. Returns exactly words.size() labels — nothing is
  /// silently truncated. An IOB run crossing a chunk boundary stays one
  /// run: the continuation labels concatenate in order, so downstream
  /// IOB-run reconstruction stitches it back together.
  std::vector<int> PredictWords(const std::vector<std::string>& words,
                                const text::WordPieceTokenizer& tokenizer) const;

  const NerModelConfig& config() const { return config_; }

  /// Head (BiLSTM + MLP) parameters for the higher learning-rate group.
  std::vector<Tensor> HeadParameters() const;

 private:
  NerModelConfig config_;
  std::unique_ptr<nn::Embedding> token_embedding_;
  std::unique_ptr<nn::Embedding> position_embedding_;
  std::unique_ptr<nn::TransformerEncoder> encoder_;
  std::unique_ptr<nn::BiLstm> bilstm_;
  std::unique_ptr<nn::Mlp> head_;
};

}  // namespace selftrain
}  // namespace resuformer

#endif  // RESUFORMER_SELFTRAIN_NER_MODEL_H_
