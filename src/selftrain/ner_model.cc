#include "selftrain/ner_model.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"
#include "tensor/ops.h"
#include "text/vocab.h"

namespace resuformer {
namespace selftrain {

std::vector<int> EncodeWordsForNer(const std::vector<std::string>& words,
                                   const text::WordPieceTokenizer& tokenizer,
                                   const NerModelConfig& config) {
  std::vector<int> ids;
  ids.reserve(std::min(words.size(), static_cast<size_t>(config.max_tokens)));
  for (const std::string& w : words) {
    if (static_cast<int>(ids.size()) >= config.max_tokens) break;
    const std::vector<int> pieces = tokenizer.Encode(w);
    ids.push_back(pieces.empty() ? text::kUnkId : pieces[0]);
  }
  if (ids.empty()) ids.push_back(text::kUnkId);
  return ids;
}

NerModel::NerModel(const NerModelConfig& config, Rng* rng) : config_(config) {
  token_embedding_ =
      std::make_unique<nn::Embedding>(config.vocab_size, config.hidden, rng);
  position_embedding_ =
      std::make_unique<nn::Embedding>(config.max_tokens, config.hidden, rng);
  nn::TransformerConfig enc_cfg{config.hidden, config.layers,
                                config.num_heads, config.ffn, config.dropout};
  encoder_ = std::make_unique<nn::TransformerEncoder>(enc_cfg, rng);
  bilstm_ =
      std::make_unique<nn::BiLstm>(config.hidden, config.lstm_hidden, rng);
  head_ = std::make_unique<nn::Mlp>(
      std::vector<int>{2 * config.lstm_hidden, config.num_labels}, rng);
  RegisterModule(token_embedding_.get());
  RegisterModule(position_embedding_.get());
  RegisterModule(encoder_.get());
  RegisterModule(bilstm_.get());
  RegisterModule(head_.get());
}

Tensor NerModel::ContextualStates(const std::vector<int>& token_ids,
                                  Rng* dropout_rng) const {
  RF_CHECK(!token_ids.empty());
  RF_CHECK_LE(static_cast<int>(token_ids.size()), config_.max_tokens);
  std::vector<int> positions(token_ids.size());
  for (size_t i = 0; i < token_ids.size(); ++i) {
    positions[i] = static_cast<int>(i);
  }
  Tensor x = ops::Add(token_embedding_->Forward(token_ids),
                      position_embedding_->Forward(positions));
  Tensor contextual = encoder_->Forward(x, Tensor(), dropout_rng);
  return bilstm_->Forward(contextual);
}

Tensor NerModel::Logits(const std::vector<int>& token_ids,
                        Rng* dropout_rng) const {
  return head_->Forward(ContextualStates(token_ids, dropout_rng));
}

Tensor NerModel::Probabilities(const std::vector<int>& token_ids) const {
  NoGradGuard guard;
  return ops::Softmax(Logits(token_ids, nullptr));
}

std::vector<int> NerModel::Predict(const std::vector<int>& token_ids) const {
  TRACE_SPAN("ner.predict");
  NoGradGuard guard;
  Tensor logits = Logits(token_ids, nullptr);
  std::vector<int> labels(logits.rows());
  for (int t = 0; t < logits.rows(); ++t) {
    int best = 0;
    for (int c = 1; c < logits.cols(); ++c) {
      if (logits.at(t, c) > logits.at(t, best)) best = c;
    }
    labels[t] = best;
  }
  return labels;
}

std::vector<int> NerModel::PredictWords(
    const std::vector<std::string>& words,
    const text::WordPieceTokenizer& tokenizer) const {
  std::vector<int> labels;
  labels.reserve(words.size());
  const size_t window = static_cast<size_t>(config_.max_tokens);
  for (size_t begin = 0; begin < words.size(); begin += window) {
    const size_t end = std::min(begin + window, words.size());
    std::vector<int> ids;
    ids.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const std::vector<int> pieces = tokenizer.Encode(words[i]);
      ids.push_back(pieces.empty() ? text::kUnkId : pieces[0]);
    }
    const std::vector<int> chunk = Predict(ids);
    labels.insert(labels.end(), chunk.begin(), chunk.end());
  }
  return labels;
}

std::vector<Tensor> NerModel::HeadParameters() const {
  std::vector<Tensor> head = bilstm_->Parameters();
  for (const Tensor& p : head_->Parameters()) head.push_back(p);
  return head;
}

}  // namespace selftrain
}  // namespace resuformer
