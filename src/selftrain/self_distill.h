#ifndef RESUFORMER_SELFTRAIN_SELF_DISTILL_H_
#define RESUFORMER_SELFTRAIN_SELF_DISTILL_H_

#include <memory>
#include <vector>

#include "nn/optimizer.h"
#include "selftrain/ner_model.h"

namespace resuformer {
namespace selftrain {

/// Options for the self-distillation self-training loop (Algorithm 2 and
/// Section IV-B5). The three ablation switches correspond to Table V:
///   * soft_labels=false      -> "w/o SL"  (hard pseudo labels)
///   * confidence_selection=false -> "w/o HCS"
///   * self_distillation=false    -> "w/o SD" (teacher only, early-stopped)
struct SelfTrainOptions {
  int teacher_epochs = 6;
  int teacher_patience = 2;          // early stopping (Adam + early stop)
  int iterations = 3;                // T in Algorithm 2
  int student_epochs_per_iteration = 1;
  float gamma = 0.8f;                // Eq. 11 threshold
  bool soft_labels = true;
  bool confidence_selection = true;
  bool self_distillation = true;
  bool verbose = false;
};

/// Result of a training run.
struct SelfTrainResult {
  std::unique_ptr<NerModel> model;
  double best_val_f1 = 0.0;
};

/// \brief Self-distillation based self-training (Algorithm 2).
///
/// 1. Train a teacher on the distantly supervised data with early stopping.
/// 2. Initialize an identical student from the teacher.
/// 3. Each iteration: the teacher produces squared-re-weighted soft labels
///    (Eq. 9); the student minimizes the KL objective on high-confidence
///    tokens (Eq. 10-12); if the student improves on validation, the
///    teacher is re-initialized from the student.
class SelfDistillTrainer {
 public:
  SelfDistillTrainer(const NerModelConfig& model_config,
                     const SelfTrainOptions& options,
                     const text::WordPieceTokenizer* tokenizer, Rng* rng)
      : model_config_(model_config),
        options_(options),
        tokenizer_(tokenizer),
        rng_(rng) {}

  /// Runs the full pipeline and returns the best model.
  SelfTrainResult Train(const std::vector<distant::AnnotatedSequence>& train,
                        const std::vector<distant::AnnotatedSequence>& val);

  /// Entity-span F1 of `model` on gold-labeled sequences (exposed for the
  /// benches; exact-span match over the entity IOB space).
  double EvaluateSpanF1(const NerModel& model,
                        const std::vector<distant::AnnotatedSequence>& data);

 private:
  /// Supervised training pass on (sequence, labels) with early stopping on
  /// validation F1. Returns the best F1.
  double TrainSupervised(NerModel* model,
                         const std::vector<distant::AnnotatedSequence>& train,
                         const std::vector<distant::AnnotatedSequence>& val,
                         int epochs, int patience);

  /// One student epoch on teacher-generated (soft) pseudo labels.
  void StudentEpoch(const NerModel& teacher, NerModel* student,
                    const std::vector<distant::AnnotatedSequence>& train,
                    nn::Adam* optimizer);

  NerModelConfig model_config_;
  SelfTrainOptions options_;
  const text::WordPieceTokenizer* tokenizer_;
  Rng* rng_;
};

}  // namespace selftrain
}  // namespace resuformer

#endif  // RESUFORMER_SELFTRAIN_SELF_DISTILL_H_
