#include "selftrain/self_distill.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "common/logging.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace resuformer {
namespace selftrain {

namespace {

using SpanSet = std::set<std::tuple<int, int, int>>;  // (start, end, tag)

SpanSet ExtractSpans(const std::vector<int>& labels) {
  SpanSet spans;
  size_t i = 0;
  while (i < labels.size()) {
    doc::EntityTag tag;
    bool begin;
    if (doc::ParseEntityIobLabel(labels[i], &tag, &begin) && begin) {
      size_t j = i + 1;
      doc::EntityTag tag2;
      bool begin2;
      while (j < labels.size() &&
             doc::ParseEntityIobLabel(labels[j], &tag2, &begin2) && !begin2 &&
             tag2 == tag) {
        ++j;
      }
      spans.insert({static_cast<int>(i), static_cast<int>(j),
                    static_cast<int>(tag)});
      i = j;
    } else {
      ++i;
    }
  }
  return spans;
}

}  // namespace

double SelfDistillTrainer::EvaluateSpanF1(
    const NerModel& model,
    const std::vector<distant::AnnotatedSequence>& data) {
  int64_t pred_total = 0, gold_total = 0, correct = 0;
  for (const auto& seq : data) {
    const std::vector<int> ids =
        EncodeWordsForNer(seq.words, *tokenizer_, model_config_);
    std::vector<int> pred = model.Predict(ids);
    std::vector<int> gold = seq.labels;
    gold.resize(pred.size(), 0);  // truncation alignment
    const SpanSet pred_spans = ExtractSpans(pred);
    const SpanSet gold_spans = ExtractSpans(gold);
    pred_total += static_cast<int64_t>(pred_spans.size());
    gold_total += static_cast<int64_t>(gold_spans.size());
    for (const auto& s : pred_spans) correct += gold_spans.count(s);
  }
  if (pred_total == 0 || gold_total == 0) return 0.0;
  const double p = static_cast<double>(correct) / pred_total;
  const double r = static_cast<double>(correct) / gold_total;
  return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
}

double SelfDistillTrainer::TrainSupervised(
    NerModel* model, const std::vector<distant::AnnotatedSequence>& train,
    const std::vector<distant::AnnotatedSequence>& val, int epochs,
    int patience) {
  nn::Adam adam(model->Parameters(), model_config_.encoder_lr, 0.9f, 0.999f,
                1e-8f, model_config_.weight_decay);
  adam.SetLearningRateFor(model->HeadParameters(), model_config_.head_lr);

  const std::string snapshot = "/tmp/rf_ner_teacher_best.bin";
  double best = -1.0;
  int bad = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    model->SetTraining(true);
    const std::vector<int> order =
        rng_->Permutation(static_cast<int>(train.size()));
    for (int idx : order) {
      const auto& seq = train[idx];
      const std::vector<int> ids =
          EncodeWordsForNer(seq.words, *tokenizer_, model_config_);
      std::vector<int> labels = seq.labels;
      labels.resize(ids.size(), 0);
      adam.ZeroGrad();
      Tensor loss = ops::CrossEntropy(model->Logits(ids, rng_), labels);
      loss.Backward();
      adam.ClipGradNorm(model_config_.grad_clip);
      adam.Step();
    }
    model->SetTraining(false);
    const double f1 = EvaluateSpanF1(*model, val);
    if (options_.verbose) {
      RF_LOG(Info) << "teacher epoch " << epoch << " val_f1=" << f1;
    }
    if (f1 > best) {
      best = f1;
      bad = 0;
      WarnIfError(nn::SaveParameters(*model, snapshot),
                  "teacher best-model snapshot save");
    } else if (++bad >= patience) {
      break;  // early stopping: the distant labels are noisy, don't overfit
    }
  }
  if (best >= 0.0) {
    WarnIfError(nn::LoadParameters(model, snapshot),
                "teacher best-model snapshot restore");
  }
  model->SetTraining(false);
  return best;
}

void SelfDistillTrainer::StudentEpoch(
    const NerModel& teacher, NerModel* student,
    const std::vector<distant::AnnotatedSequence>& train,
    nn::Adam* optimizer) {
  const int num_labels = model_config_.num_labels;
  // Eq. 9's unnormalized class frequencies p_c are computed over the whole
  // training set from the current teacher (Xie et al., 2016): dividing by
  // p_c is what lets confidently-entity-looking tokens overcome the
  // dominant O mass of the distant annotation.
  std::vector<float> p_c(num_labels, 1e-6f);
  for (const auto& seq : train) {
    const std::vector<int> ids =
        EncodeWordsForNer(seq.words, *tokenizer_, model_config_);
    Tensor f = teacher.Probabilities(ids);
    for (int t = 0; t < f.rows(); ++t) {
      for (int c = 0; c < num_labels; ++c) p_c[c] += f.at(t, c);
    }
  }

  student->SetTraining(true);
  const std::vector<int> order =
      rng_->Permutation(static_cast<int>(train.size()));
  for (int idx : order) {
    const auto& seq = train[idx];
    const std::vector<int> ids =
        EncodeWordsForNer(seq.words, *tokenizer_, model_config_);
    const int t_len = static_cast<int>(ids.size());

    // Teacher soft pseudo labels with squared re-weighting (Eq. 9).
    Tensor f = teacher.Probabilities(ids);  // [T, C], no grad
    Tensor soft = Tensor::Zeros({t_len, num_labels});
    std::vector<float> weights(t_len, 1.0f);
    for (int t = 0; t < t_len; ++t) {
      float z = 0.0f;
      for (int c = 0; c < num_labels; ++c) {
        const float s = f.at(t, c) * f.at(t, c) / p_c[c];
        soft.at(t, c) = s;
        z += s;
      }
      float max_s = 0.0f;
      for (int c = 0; c < num_labels; ++c) {
        soft.at(t, c) /= z;
        max_s = std::max(max_s, soft.at(t, c));
      }
      if (!options_.soft_labels) {
        // Hard pseudo label: argmax one-hot (w/o SL ablation).
        int best = 0;
        for (int c = 1; c < num_labels; ++c) {
          if (soft.at(t, c) > soft.at(t, best)) best = c;
        }
        for (int c = 0; c < num_labels; ++c) {
          soft.at(t, c) = c == best ? 1.0f : 0.0f;
        }
      }
      // High-confidence token selection (Eq. 11): drop uncertain tokens.
      if (options_.confidence_selection && max_s <= options_.gamma) {
        weights[t] = 0.0f;
      }
    }
    bool any = false;
    for (float w : weights) any = any || w > 0.0f;
    if (!any) continue;

    optimizer->ZeroGrad();
    Tensor loss = ops::SoftCrossEntropy(student->Logits(ids, rng_), soft,
                                        weights);  // Eq. 10 / Eq. 12
    loss.Backward();
    optimizer->ClipGradNorm(model_config_.grad_clip);
    optimizer->Step();
  }
  student->SetTraining(false);
}

SelfTrainResult SelfDistillTrainer::Train(
    const std::vector<distant::AnnotatedSequence>& train,
    const std::vector<distant::AnnotatedSequence>& val) {
  SelfTrainResult result;

  // Step 1: teacher with early stopping on the distant training set.
  auto teacher = std::make_unique<NerModel>(model_config_, rng_);
  double teacher_f1 = TrainSupervised(teacher.get(), train, val,
                                      options_.teacher_epochs,
                                      options_.teacher_patience);
  if (!options_.self_distillation) {
    result.best_val_f1 = teacher_f1;
    result.model = std::move(teacher);
    return result;  // "w/o SD" ablation
  }

  // Step 2: student initialized from the teacher.
  auto student = std::make_unique<NerModel>(model_config_, rng_);
  RF_CHECK(nn::CopyParameters(*teacher, student.get()).ok());

  nn::Adam adam(student->Parameters(), model_config_.encoder_lr, 0.9f,
                0.999f, 1e-8f, model_config_.weight_decay);
  adam.SetLearningRateFor(student->HeadParameters(), model_config_.head_lr);

  const std::string snapshot = "/tmp/rf_ner_student_best.bin";
  double best = teacher_f1;
  WarnIfError(nn::SaveParameters(*student, snapshot),
              "student initial snapshot save");
  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (int e = 0; e < options_.student_epochs_per_iteration; ++e) {
      StudentEpoch(*teacher, student.get(), train, &adam);
    }
    const double f1 = EvaluateSpanF1(*student, val);
    if (options_.verbose) {
      RF_LOG(Info) << "self-train iter " << iter << " student_f1=" << f1
                   << " best=" << best;
    }
    if (f1 > best) {
      best = f1;
      WarnIfError(nn::SaveParameters(*student, snapshot),
                  "student best-model snapshot save");
      // Re-initialize the teacher from the improved student (Algorithm 2,
      // line 8): a better student produces a better teacher.
      RF_CHECK(nn::CopyParameters(*student, teacher.get()).ok());
    }
  }
  WarnIfError(nn::LoadParameters(student.get(), snapshot),
              "student best-model snapshot restore");
  student->SetTraining(false);
  result.best_val_f1 = best;
  result.model = std::move(student);
  return result;
}

}  // namespace selftrain
}  // namespace resuformer
