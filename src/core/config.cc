#include "core/config.h"

#include "common/thread_pool.h"

namespace resuformer {
namespace core {

void ApplyThreadConfig(const ResuFormerConfig& config) {
  // SetNumThreads resolves <= 0 to the RESUFORMER_THREADS env override or
  // hardware concurrency, and is a no-op when the size is unchanged.
  ThreadPool::Global().SetNumThreads(config.threads);
}

}  // namespace core
}  // namespace resuformer
