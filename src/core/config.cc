// Intentionally empty: ResuFormerConfig is an aggregate defined in config.h.
// This translation unit anchors the header in the build for IWYU checks.
#include "core/config.h"
