#include "core/config.h"

#include "common/thread_pool.h"
#include "tensor/arena.h"

namespace resuformer {
namespace core {

void ApplyThreadConfig(const ResuFormerConfig& config) {
  // SetNumThreads resolves <= 0 to the RESUFORMER_THREADS env override or
  // hardware concurrency, and is a no-op when the size is unchanged.
  ThreadPool::Global().SetNumThreads(config.threads);
  TensorArena::Global().SetEnabled(config.use_tensor_arena);
}

}  // namespace core
}  // namespace resuformer
