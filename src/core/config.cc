#include "core/config.h"

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "tensor/arena.h"

namespace resuformer {
namespace core {

void ApplyRuntimeOptions(const RuntimeOptions& options) {
  // SetNumThreads resolves <= 0 to the RESUFORMER_THREADS env override or
  // hardware concurrency, and is a no-op when the size is unchanged.
  ThreadPool::Global().SetNumThreads(options.threads);
  TensorArena::Global().SetEnabled(options.use_tensor_arena);
  metrics::MetricsRegistry::Global().SetEnabled(options.enable_metrics);
  trace::TraceRecorder::Global().SetBufferCapacity(
      options.trace_buffer_capacity);
  trace::TraceRecorder::Global().SetEnabled(options.enable_tracing);
}

void ApplyThreadConfig(const ResuFormerConfig& config) {
  ApplyRuntimeOptions(config.runtime);
}

}  // namespace core
}  // namespace resuformer
