#include "core/distiller.h"

namespace resuformer {
namespace core {

std::vector<LabeledDocument> KnowledgeDistiller::DistillPseudoLabels(
    const SentenceLabeler& teacher,
    const std::vector<const doc::Document*>& unlabeled) const {
  std::vector<LabeledDocument> pseudo;
  pseudo.reserve(unlabeled.size());
  for (const doc::Document* document : unlabeled) {
    LabeledDocument example;
    example.document = EncodeForModel(*document, *tokenizer_, config_);
    example.labels = teacher.LabelSentences(*document);
    example.labels.resize(example.document.sentences.size(),
                          doc::kOutsideLabel);
    pseudo.push_back(std::move(example));
  }
  return pseudo;
}

double KnowledgeDistiller::TrainWithDistillation(
    BlockClassifier* student, const std::vector<LabeledDocument>& pseudo,
    const std::vector<LabeledDocument>& gold_train,
    const std::vector<LabeledDocument>& gold_val,
    const FinetuneOptions& options, Rng* rng) const {
  // Step 4: train on the teacher's pseudo labels (fewer epochs — this is an
  // augmentation stage, not the final fit).
  FinetuneOptions pseudo_options = options;
  pseudo_options.epochs = std::max(1, options.epochs / 2);
  FinetuneBlockClassifier(student, pseudo, gold_val, pseudo_options, rng);
  // Step 5: fine-tune on gold data.
  return FinetuneBlockClassifier(student, gold_train, gold_val, options, rng);
}

}  // namespace core
}  // namespace resuformer
