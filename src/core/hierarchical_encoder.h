#ifndef RESUFORMER_CORE_HIERARCHICAL_ENCODER_H_
#define RESUFORMER_CORE_HIERARCHICAL_ENCODER_H_

#include <array>
#include <memory>
#include <vector>

#include "core/config.h"
#include "doc/document.h"
#include "doc/visual_features.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/transformer.h"
#include "text/wordpiece.h"

namespace resuformer {
namespace core {

/// Seven-tuple spatial layout of Eq. 2: (xmin, ymin, xmax, ymax, width,
/// height, page), each normalized to [0, 1000].
using LayoutTuple = std::array<int, 7>;

/// One sentence prepared for the model: token ids (with [CLS] prepended),
/// per-token layout tuples, the sentence-level layout tuple, and the
/// engineered visual features.
struct EncodedSentence {
  std::vector<int> token_ids;
  std::vector<LayoutTuple> token_layout;  // aligned with token_ids
  LayoutTuple sentence_layout{};
  std::vector<float> visual;  // doc::kVisualFeatureDim
};

/// A document prepared for the model (truncated to config limits).
struct EncodedDocument {
  std::vector<EncodedSentence> sentences;
  int num_pages = 1;
};

/// Converts a parsed document into model inputs: WordPiece-tokenizes each
/// sentence, normalizes coordinates (LayoutLMv2 convention) and computes the
/// visual features. Sentences/tokens beyond the config limits are truncated.
EncodedDocument EncodeForModel(const doc::Document& document,
                               const text::WordPieceTokenizer& tokenizer,
                               const ResuFormerConfig& config);

/// Bucketizes a [0, 1000] layout coordinate into [0, buckets). Exposed so
/// the inference planner computes the exact ids the encoder's layout
/// embedding gathers would (core/inference_plan.cc binds them per replay).
int LayoutBucketIndex(int coord, int buckets);

/// \brief The hierarchical multi-modal Transformer encoder (Figure 2).
///
/// Sentence level: token embedding + 1-D position + segment + 2-D layout
/// embeddings -> N-layer Transformer -> [CLS] state -> dense + L2 norm (the
/// sentence representation h_j). Document level: h_j fused with the visual
/// features v_j ("h* = [h; v]" projected back to hidden), plus sentence
/// layout / position embeddings -> M-layer Transformer -> contextual states
/// H_d. The MLLM head ties into the vocabulary projection.
class HierarchicalEncoder : public nn::Module {
 public:
  HierarchicalEncoder(const ResuFormerConfig& config, Rng* rng);

  /// Sentence-level pass over every sentence: returns the fused two-modal
  /// sentence representations h* [m, hidden].
  Tensor EncodeSentences(const EncodedDocument& document,
                         Rng* dropout_rng) const;

  /// Document-level pass. `h_star` is typically EncodeSentences output,
  /// possibly with rows replaced by mask_vector() (SCL masking). Returns
  /// contextual sentence states [m, hidden].
  Tensor EncodeDocument(const Tensor& h_star, const EncodedDocument& document,
                        Rng* dropout_rng) const;

  /// Convenience: both passes.
  Tensor Encode(const EncodedDocument& document, Rng* dropout_rng) const;

  /// Token states of one sentence [T, hidden], with `ids` overriding the
  /// stored token ids (the MLLM pass feeds masked ids here).
  Tensor SentenceTokenStates(const EncodedSentence& sentence,
                             const std::vector<int>& ids,
                             Rng* dropout_rng) const;

  /// The full sentence-level tower for one sentence: token states -> [CLS]
  /// state -> dense -> L2 norm, shaped [1, hidden]. This is the unit the
  /// inference planner traces once per token-count bucket.
  Tensor SentenceRepresentation(const EncodedSentence& sentence,
                                const std::vector<int>& ids,
                                Rng* dropout_rng) const;

  /// Two-modal fusion h* = proj([h; v]) for h [m, hidden] and visual
  /// features v [m, doc::kVisualFeatureDim].
  Tensor FuseVisual(const Tensor& h, const Tensor& visual) const;

  /// Stacks the per-sentence engineered visual features into a tensor
  /// [m, doc::kVisualFeatureDim].
  Tensor BuildVisualTensor(const EncodedDocument& document) const;

  /// Vocabulary logits for token states (weight-tied with the input
  /// embedding plus a learned bias).
  Tensor VocabLogits(const Tensor& token_states) const;

  /// The learned mask vector that replaces masked sentence representations
  /// in the SCL objective, shaped [1, hidden].
  Tensor mask_vector() const { return mask_vector_; }

  const ResuFormerConfig& config() const { return config_; }

 private:
  Tensor LayoutEmbedding(const std::vector<LayoutTuple>& tuples) const;

  ResuFormerConfig config_;
  // Sentence level.
  std::unique_ptr<nn::Embedding> token_embedding_;
  std::unique_ptr<nn::Embedding> token_position_embedding_;
  std::unique_ptr<nn::Embedding> segment_embedding_;
  std::vector<std::unique_ptr<nn::Embedding>> layout_embeddings_;  // 7 tables
  std::unique_ptr<nn::TransformerEncoder> sentence_encoder_;
  std::unique_ptr<nn::Linear> sentence_dense_;
  Tensor mlm_bias_;
  // Document level.
  std::unique_ptr<nn::Linear> fusion_;  // [h; v] -> hidden
  std::unique_ptr<nn::Embedding> sentence_position_embedding_;
  std::unique_ptr<nn::TransformerEncoder> document_encoder_;
  Tensor mask_vector_;
};

}  // namespace core
}  // namespace resuformer

#endif  // RESUFORMER_CORE_HIERARCHICAL_ENCODER_H_
