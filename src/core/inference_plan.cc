#include "core/inference_plan.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "doc/block_tags.h"
#include "doc/visual_features.h"
#include "tensor/tensor.h"

namespace resuformer {
namespace core {

namespace {

struct PlanMetrics {
  metrics::Counter* cache_hits;
  metrics::Counter* cache_misses;
  metrics::Counter* builds;
  metrics::Counter* fallbacks;
  metrics::Histogram* replay_us;
};

PlanMetrics& Metrics() {
  static PlanMetrics m = [] {
    auto& reg = metrics::MetricsRegistry::Global();
    return PlanMetrics{reg.GetCounter("plan.cache_hits"),
                       reg.GetCounter("plan.cache_misses"),
                       reg.GetCounter("plan.builds"),
                       reg.GetCounter("plan.fallbacks"),
                       reg.GetHistogram("plan.replay_us")};
  }();
  return m;
}

/// Bucket ids for one layout feature across `tuples` — the exact ids the
/// encoder's LayoutEmbedding computes (shared LayoutBucketIndex).
void FillLayoutIds(const std::vector<LayoutTuple>& tuples, int feature,
                   int buckets, std::vector<int>* out) {
  out->resize(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    (*out)[i] = LayoutBucketIndex(tuples[i][feature], buckets);
  }
}

}  // namespace

InferencePlanner::InferencePlanner(const BlockClassifier* classifier)
    : classifier_(classifier) {}

std::shared_ptr<const plan::Plan> InferencePlanner::SentencePlanFor(
    const EncodedSentence& representative) {
  const int t_len = static_cast<int>(representative.token_ids.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sentence_plans_.find(t_len);
    if (it != sentence_plans_.end()) {
      Metrics().cache_hits->Increment();
      return it->second;
    }
  }
  Metrics().cache_misses->Increment();
  TRACE_SPAN("plan.build");
  NoGradGuard guard;
  std::shared_ptr<const plan::Plan> built;
  {
    plan::Recorder recorder;
    if (classifier_->config().runtime.use_int8) recorder.EnableInt8();
    Tensor rep = classifier_->encoder()->SentenceRepresentation(
        representative, representative.token_ids, nullptr);
    built = recorder.Finish(rep);
  }
  if (built != nullptr) Metrics().builds->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sentence_plans_.emplace(t_len, built);
  return inserted ? built : it->second;  // first build wins
}

std::shared_ptr<const plan::Plan> InferencePlanner::DocumentPlanFor(
    const EncodedDocument& document, const std::vector<float>& hidden,
    const std::vector<float>& visual) {
  const int m = static_cast<int>(document.sentences.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = document_plans_.find(m);
    if (it != document_plans_.end()) {
      Metrics().cache_hits->Increment();
      return it->second;
    }
  }
  Metrics().cache_misses->Increment();
  TRACE_SPAN("plan.build");
  NoGradGuard guard;
  const int d = classifier_->config().hidden;
  std::shared_ptr<const plan::Plan> built;
  {
    plan::Recorder recorder;
    if (classifier_->config().runtime.use_int8) recorder.EnableInt8();
    Tensor h = Tensor::FromData({m, d}, hidden);
    Tensor v = Tensor::FromData({m, doc::kVisualFeatureDim}, visual);
    recorder.BindInputTensor(plan::kRoleHiddenInput, h);
    recorder.BindInputTensor(plan::kRoleVisualInput, v);
    const HierarchicalEncoder* enc = classifier_->encoder();
    Tensor contextual =
        enc->EncodeDocument(enc->FuseVisual(h, v), document, nullptr);
    Tensor emissions = classifier_->projection()->Forward(
        classifier_->bilstm()->Forward(contextual));
    built = recorder.Finish(emissions);
  }
  if (built != nullptr) Metrics().builds->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = document_plans_.emplace(m, built);
  return inserted ? built : it->second;  // first build wins
}

bool InferencePlanner::EmissionsViaPlan(const EncodedDocument& document,
                                        std::vector<float>* emissions) {
  const int m = static_cast<int>(document.sentences.size());
  if (m == 0) return false;
  const ResuFormerConfig& cfg = classifier_->config();
  const int d = cfg.hidden;

  // Stage 1: one sentence-plan replay per sentence fills the stacked
  // representation buffer row by row.
  std::vector<float> hidden(static_cast<int64_t>(m) * d);
  std::vector<std::vector<int>> layout_ids(plan::kNumLayoutFeatures);
  for (int i = 0; i < m; ++i) {
    const EncodedSentence& sentence = document.sentences[i];
    if (sentence.token_ids.empty()) return false;
    std::shared_ptr<const plan::Plan> sp = SentencePlanFor(sentence);
    if (sp == nullptr) return false;
    plan::BindingSet bindings;
    bindings.indices[plan::kRoleTokenIds] = &sentence.token_ids;
    for (int f = 0; f < plan::kNumLayoutFeatures; ++f) {
      FillLayoutIds(sentence.token_layout, f, cfg.layout_buckets,
                    &layout_ids[f]);
      bindings.indices[plan::kRoleLayout0 + f] = &layout_ids[f];
    }
    metrics::ScopedTimerUs timer(Metrics().replay_us);
    if (!plan::PlanExecutor::Run(
            *sp, bindings, hidden.data() + static_cast<int64_t>(i) * d)) {
      return false;
    }
  }

  // Stage 2: document-plan replay over the stacked representations.
  std::vector<float> visual(static_cast<int64_t>(m) * doc::kVisualFeatureDim);
  std::vector<LayoutTuple> sentence_tuples(m);
  for (int i = 0; i < m; ++i) {
    const EncodedSentence& sentence = document.sentences[i];
    std::copy(
        sentence.visual.begin(), sentence.visual.end(),
        visual.begin() + static_cast<int64_t>(i) * doc::kVisualFeatureDim);
    sentence_tuples[i] = sentence.sentence_layout;
  }
  std::shared_ptr<const plan::Plan> dp =
      DocumentPlanFor(document, hidden, visual);
  if (dp == nullptr) return false;
  plan::BindingSet bindings;
  bindings.tensors[plan::kRoleHiddenInput] = hidden.data();
  bindings.tensor_sizes[plan::kRoleHiddenInput] =
      static_cast<int64_t>(hidden.size());
  bindings.tensors[plan::kRoleVisualInput] = visual.data();
  bindings.tensor_sizes[plan::kRoleVisualInput] =
      static_cast<int64_t>(visual.size());
  for (int f = 0; f < plan::kNumLayoutFeatures; ++f) {
    FillLayoutIds(sentence_tuples, f, cfg.layout_buckets, &layout_ids[f]);
    bindings.indices[plan::kRoleLayout0 + f] = &layout_ids[f];
  }
  emissions->resize(static_cast<int64_t>(m) * doc::kNumIobLabels);
  metrics::ScopedTimerUs timer(Metrics().replay_us);
  return plan::PlanExecutor::Run(*dp, bindings, emissions->data());
}

std::vector<int> InferencePlanner::Predict(const EncodedDocument& document) {
  if (document.sentences.empty()) return {};
  TRACE_SPAN("plan.replay");
  std::vector<float> emissions;
  if (!EmissionsViaPlan(document, &emissions)) {
    Metrics().fallbacks->Increment();
    return classifier_->Predict(document);
  }
  const int m = static_cast<int>(document.sentences.size());
  NoGradGuard guard;
  Tensor em = Tensor::FromData({m, doc::kNumIobLabels}, std::move(emissions));
  return classifier_->crf()->Decode(em);
}

}  // namespace core
}  // namespace resuformer
