#ifndef RESUFORMER_CORE_INFERENCE_PLAN_H_
#define RESUFORMER_CORE_INFERENCE_PLAN_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/block_classifier.h"
#include "tensor/plan.h"

namespace resuformer {
namespace core {

/// \brief Trace-once / replay-per-document inference for the block
/// classifier (ROADMAP item 2).
///
/// The forward pass decomposes into two statically-shaped stages, each
/// cached per sequence-length bucket (the same truncation caps
/// `EncodeForModel` enforces, so buckets are exact lengths):
///
///  * sentence stage, keyed by token count T: token/position/segment/layout
///    embeddings -> sentence Transformer -> [CLS] -> dense -> L2 norm,
///    output [1, hidden]. Replay-variable inputs: token ids and the seven
///    layout-bucket id vectors.
///  * document stage, keyed by sentence count m: visual fusion -> document
///    Transformer -> BiLSTM -> projection, output [m, kNumIobLabels].
///    Replay-variable inputs: the stacked sentence representations, the
///    visual features, and the seven sentence-layout bucket id vectors.
///
/// The CRF Viterbi decode stays dynamic (data-dependent control flow).
///
/// Fallback semantics: a failed trace (an unsupported op ran, e.g. the model
/// was left in training mode) is cached as a null plan, a failed replay
/// (binding mismatch, out-of-range index) aborts the document, and both
/// route the document to `BlockClassifier::Predict` — behaviour is always
/// identical to the dynamic path, the plan is purely a fast path. The
/// `plan.fallbacks` counter tallies such documents.
///
/// Thread safety: the cache mutex covers only map lookup/insert (first
/// build wins); plans are immutable after build, so any number of pipeline
/// workers replay one shared plan concurrently without locks.
class InferencePlanner {
 public:
  explicit InferencePlanner(const BlockClassifier* classifier);

  /// Drop-in for BlockClassifier::Predict: Viterbi-decoded IOB labels via
  /// plan replay, falling back to the dynamic path when a plan cannot be
  /// built or a replay is rejected.
  std::vector<int> Predict(const EncodedDocument& document);

  /// Emission scores through plan replay only (no CRF, no dynamic
  /// fallback): returns false when any stage could not be planned or
  /// replayed. `emissions` is resized to [m * doc::kNumIobLabels]. Exposed
  /// for the equivalence tests and bench_micro.
  bool EmissionsViaPlan(const EncodedDocument& document,
                        std::vector<float>* emissions);

 private:
  /// Get-or-build the per-bucket plans. A failed build is cached as null so
  /// a pathological bucket does not pay the trace cost per document.
  std::shared_ptr<const plan::Plan> SentencePlanFor(
      const EncodedSentence& representative);
  std::shared_ptr<const plan::Plan> DocumentPlanFor(
      const EncodedDocument& document, const std::vector<float>& hidden,
      const std::vector<float>& visual);

  const BlockClassifier* classifier_;
  std::mutex mu_;
  std::map<int, std::shared_ptr<const plan::Plan>> sentence_plans_;  // by T
  std::map<int, std::shared_ptr<const plan::Plan>> document_plans_;  // by m
};

}  // namespace core
}  // namespace resuformer

#endif  // RESUFORMER_CORE_INFERENCE_PLAN_H_
