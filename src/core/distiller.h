#ifndef RESUFORMER_CORE_DISTILLER_H_
#define RESUFORMER_CORE_DISTILLER_H_

#include <vector>

#include "core/block_classifier.h"
#include "doc/document.h"

namespace resuformer {
namespace core {

/// Abstract teacher interface for Algorithm 1's knowledge distillation: any
/// model able to assign sentence-level IOB block labels to a document. The
/// paper's teacher is LayoutXLM (token-level, converted to sentence labels);
/// ours is baselines::LayoutTokenModel, which implements this interface.
class SentenceLabeler {
 public:
  virtual ~SentenceLabeler() = default;

  /// Predicted IOB block label per sentence of `document`.
  virtual std::vector<int> LabelSentences(
      const doc::Document& document) const = 0;
};

/// \brief Knowledge distillation per Algorithm 1.
///
/// Steps (the encoder is assumed already pre-trained by Pretrainer):
///   2. the caller trains the teacher on the labeled set;
///   3. DistillPseudoLabels() auto-annotates unlabeled documents;
///   4-5. TrainWithDistillation() trains the student on pseudo labels, then
///        fine-tunes on the gold labels.
class KnowledgeDistiller {
 public:
  KnowledgeDistiller(const text::WordPieceTokenizer* tokenizer,
                     const ResuFormerConfig& config)
      : tokenizer_(tokenizer), config_(config) {}

  /// Step 3: pseudo-labels `unlabeled` with the teacher.
  std::vector<LabeledDocument> DistillPseudoLabels(
      const SentenceLabeler& teacher,
      const std::vector<const doc::Document*>& unlabeled) const;

  /// Steps 4-5: pseudo-label training followed by gold fine-tuning; returns
  /// the final validation accuracy.
  double TrainWithDistillation(BlockClassifier* student,
                               const std::vector<LabeledDocument>& pseudo,
                               const std::vector<LabeledDocument>& gold_train,
                               const std::vector<LabeledDocument>& gold_val,
                               const FinetuneOptions& options, Rng* rng) const;

 private:
  const text::WordPieceTokenizer* tokenizer_;
  ResuFormerConfig config_;
};

}  // namespace core
}  // namespace resuformer

#endif  // RESUFORMER_CORE_DISTILLER_H_
