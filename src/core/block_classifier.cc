#include "core/block_classifier.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"
#include "doc/block_tags.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace resuformer {
namespace core {

BlockClassifier::BlockClassifier(const ResuFormerConfig& config, Rng* rng)
    : config_(config) {
  ApplyThreadConfig(config);
  encoder_ = std::make_unique<HierarchicalEncoder>(config, rng);
  bilstm_ =
      std::make_unique<nn::BiLstm>(config.hidden, config.lstm_hidden, rng);
  projection_ = std::make_unique<nn::Mlp>(
      std::vector<int>{2 * config.lstm_hidden, doc::kNumIobLabels}, rng);
  crf_ = std::make_unique<crf::LinearCrf>(doc::kNumIobLabels, rng);
  RegisterModule(encoder_.get());
  RegisterModule(bilstm_.get());
  RegisterModule(projection_.get());
  RegisterModule(crf_.get());
}

Tensor BlockClassifier::Emissions(const EncodedDocument& document,
                                  Rng* dropout_rng) const {
  Tensor contextual = encoder_->Encode(document, dropout_rng);
  Tensor lstm_out = bilstm_->Forward(contextual);  // Eq. 8
  return projection_->Forward(lstm_out);
}

Tensor BlockClassifier::Loss(const LabeledDocument& example,
                             Rng* dropout_rng) const {
  RF_CHECK_EQ(example.document.sentences.size(), example.labels.size());
  Tensor emissions = Emissions(example.document, dropout_rng);
  return crf_->NegLogLikelihood(emissions, example.labels);
}

std::vector<int> BlockClassifier::Predict(
    const EncodedDocument& document) const {
  TRACE_SPAN("block_classifier.predict");
  NoGradGuard guard;
  if (document.sentences.empty()) return {};
  Tensor emissions = Emissions(document, nullptr);
  return crf_->Decode(emissions);
}

std::vector<Tensor> BlockClassifier::HeadParameters() const {
  std::vector<Tensor> head = bilstm_->Parameters();
  for (const Tensor& p : projection_->Parameters()) head.push_back(p);
  for (const Tensor& p : crf_->Parameters()) head.push_back(p);
  return head;
}

LabeledDocument MakeLabeledDocument(const doc::Document& document,
                                    const text::WordPieceTokenizer& tokenizer,
                                    const ResuFormerConfig& config) {
  LabeledDocument out;
  out.document = EncodeForModel(document, tokenizer, config);
  out.labels = document.sentence_labels;
  out.labels.resize(out.document.sentences.size(), doc::kOutsideLabel);
  return out;
}

double SentenceLabelAccuracy(const BlockClassifier& model,
                             const std::vector<LabeledDocument>& docs) {
  int correct = 0, total = 0;
  for (const LabeledDocument& ex : docs) {
    if (ex.document.sentences.empty()) continue;
    const std::vector<int> pred = model.Predict(ex.document);
    for (size_t i = 0; i < pred.size() && i < ex.labels.size(); ++i) {
      correct += pred[i] == ex.labels[i];
      ++total;
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

double FinetuneBlockClassifier(BlockClassifier* model,
                               const std::vector<LabeledDocument>& train,
                               const std::vector<LabeledDocument>& val,
                               const FinetuneOptions& options, Rng* rng) {
  const ResuFormerConfig& cfg = model->encoder()->config();
  nn::Adam adam(model->Parameters(), cfg.finetune_encoder_lr, 0.9f, 0.999f,
                1e-8f, cfg.weight_decay);
  adam.SetLearningRateFor(model->HeadParameters(), cfg.finetune_head_lr);

  double best_val = -1.0;
  int bad_epochs = 0;
  const std::string snapshot = "/tmp/rf_block_classifier_best.bin";
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    model->SetTraining(true);
    const std::vector<int> order =
        rng->Permutation(static_cast<int>(train.size()));
    double epoch_loss = 0.0;
    int steps = 0;
    for (int idx : order) {
      const LabeledDocument& ex = train[idx];
      if (ex.document.sentences.empty()) continue;
      adam.ZeroGrad();
      Tensor loss = model->Loss(ex, rng);
      loss.Backward();
      adam.ClipGradNorm(cfg.grad_clip);
      adam.Step();
      epoch_loss += loss.item();
      ++steps;
    }
    model->SetTraining(false);
    const double val_acc = SentenceLabelAccuracy(*model, val);
    if (options.verbose) {
      RF_LOG(Info) << "finetune epoch " << epoch << " loss="
                   << (steps ? epoch_loss / steps : 0.0)
                   << " val_acc=" << val_acc;
    }
    if (val_acc > best_val) {
      best_val = val_acc;
      bad_epochs = 0;
      WarnIfError(nn::SaveParameters(*model, snapshot),
                  "finetune best-model snapshot save");
    } else if (++bad_epochs >= options.patience) {
      break;  // early stopping
    }
  }
  if (best_val >= 0.0) {
    WarnIfError(nn::LoadParameters(model, snapshot),
                "finetune best-model snapshot restore");
  }
  model->SetTraining(false);
  return best_val;
}

}  // namespace core
}  // namespace resuformer
