#ifndef RESUFORMER_CORE_PRETRAINER_H_
#define RESUFORMER_CORE_PRETRAINER_H_

#include <vector>

#include "core/hierarchical_encoder.h"
#include "nn/optimizer.h"

namespace resuformer {
namespace core {

/// Which self-supervised objectives are active; the Table III ablations
/// disable one at a time.
struct PretrainObjectives {
  bool mllm = true;  // masked layout-language model (w/o WMP disables)
  bool scl = true;   // self-supervised contrastive learning
  bool dnsp = true;  // dynamic next-sentence prediction
};

/// Per-step loss breakdown.
struct PretrainStats {
  double mllm_loss = 0.0;
  double scl_loss = 0.0;
  double dnsp_loss = 0.0;
  double total_loss = 0.0;
};

/// \brief Runs the three pre-training objectives of Section IV-A2 on a
/// hierarchical encoder.
///
/// Objective #1 (MLLM): mask `word_mask_prob` of the tokens in a few
/// sentences per document (80/10/10 mask/random/keep, BERT convention) while
/// retaining their 2-D layout embeddings, and predict the originals.
/// Objective #2 (SCL, Eq. 3-4): replace k sentence representations per
/// document with the learned mask vector, encode, and contrastively match
/// the contextual states at masked positions to the original (pre-masking)
/// representations pooled across the batch, with temperature tau.
/// Objective #3 (DNSP, Eq. 5-6): sample L sentences and score adjacency
/// against their true next sentences through the bilinear form H' W_d H''^T
/// with an in-batch softmax.
/// The overall loss is Eq. 7: lambda1*L_wp + lambda2*L_cl + lambda3*L_ns.
class Pretrainer {
 public:
  Pretrainer(HierarchicalEncoder* encoder, Rng* rng,
             PretrainObjectives objectives = {});

  /// One optimizer step over a mini-batch of documents; returns the losses.
  PretrainStats Step(const std::vector<const EncodedDocument*>& batch,
                     nn::Optimizer* optimizer);

  /// Runs `epochs` passes over `corpus` with the given batch size and
  /// learning rate; returns the final-epoch mean stats.
  PretrainStats Train(const std::vector<EncodedDocument>& corpus, int epochs,
                      int batch_size, float learning_rate);

  /// The bilinear DNSP parameter W_d (exposed for tests).
  const Tensor& dnsp_matrix() const { return dnsp_matrix_; }

 private:
  Tensor MllmLoss(const EncodedDocument& doc);
  /// Appends this document's (contextual, original) masked-sentence pairs.
  void CollectSclPairs(const EncodedDocument& doc, const Tensor& h_star,
                       const Tensor& contextual,
                       const std::vector<int>& masked_indices,
                       std::vector<Tensor>* contextual_rows,
                       std::vector<Tensor>* original_rows);

  HierarchicalEncoder* encoder_;
  Rng* rng_;
  PretrainObjectives objectives_;
  Tensor dnsp_matrix_;  // [hidden, hidden] bilinear form W_d (Eq. 5)
  // Projection heads between the backbone and the contrastive objectives:
  // they absorb objective-specific distortion so the encoder states keep
  // their content (SimCLR-style; implementation note in DESIGN.md).
  Tensor scl_projection_;   // [hidden, hidden]
  Tensor dnsp_projection_;  // [hidden, hidden]

 public:
  /// Parameters owned by the pre-trainer itself (bilinear form and
  /// projection heads); callers add these to the optimizer alongside the
  /// encoder parameters.
  std::vector<Tensor> OwnParameters() const {
    return {dnsp_matrix_, scl_projection_, dnsp_projection_};
  }
};

}  // namespace core
}  // namespace resuformer

#endif  // RESUFORMER_CORE_PRETRAINER_H_
