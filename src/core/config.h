#ifndef RESUFORMER_CORE_CONFIG_H_
#define RESUFORMER_CORE_CONFIG_H_

#include "common/runtime_options.h"

namespace resuformer {
namespace core {

/// Hyper-parameters of the hierarchical multi-modal model and its training.
/// Paper values are quoted in comments; defaults are the CPU-scale settings
/// from DESIGN.md Section 6 (all comparisons in the benches are run under
/// identical budgets, so only relative results are interpreted).
struct ResuFormerConfig {
  // --- architecture ---
  int hidden = 32;           // paper: 768
  int sentence_layers = 2;   // paper: 6 (RoBERTa-initialized)
  int document_layers = 2;   // paper: 4
  int num_heads = 4;         // paper: 12
  int ffn = 64;              // paper: 3072
  float dropout = 0.1f;
  int max_tokens_per_sentence = 24;  // paper: 55
  int max_sentences = 64;            // paper: 350
  int vocab_size = 2000;     // set from the trained tokenizer
  int layout_buckets = 33;   // coordinate buckets over [0, 1000]
  int lstm_hidden = 32;      // fine-tuning BiLSTM width (paper: 256)

  // --- pre-training objectives (Section IV-A2) ---
  float word_mask_prob = 0.15f;     // MLLM masking rate (BERT convention)
  float sentence_mask_frac = 0.2f;  // k / m for SCL ("0.2 in all sentences")
  float next_sentence_frac = 0.2f;  // L / m for DNSP
  float tau = 0.8f;                 // contrastive temperature
  float lambda1 = 0.4f;             // weight of L_wp
  float lambda2 = 1.0f;             // weight of L_cl
  float lambda3 = 0.6f;             // weight of L_ns
  int mllm_sentences_per_doc = 4;   // sentences re-encoded per MLLM step

  // --- optimization ---
  // The paper uses 5e-5 / 1e-3; tiny-from-scratch models train with
  // proportionally larger encoder rates.
  float pretrain_lr = 1e-3f;
  float finetune_encoder_lr = 5e-4f;
  float finetune_head_lr = 1e-3f;
  float weight_decay = 0.01f;
  float grad_clip = 5.0f;

  // --- runtime ---
  // Process-level execution knobs (pool width, fused attention, arena,
  // metrics, tracing) in one struct; see common/runtime_options.h. Applied
  // via ApplyRuntimeOptions when a model is constructed. Env overrides come
  // from RuntimeOptions::FromEnv(), resolved once, not per knob.
  RuntimeOptions runtime;
};

/// Applies every RuntimeOptions field to the process-wide singletons it
/// governs: thread-pool width, arena recycling, timed-metrics gate, tracer
/// gate and ring capacity. Idempotent; model constructors call it (through
/// ApplyThreadConfig) so the knobs take effect without extra wiring.
void ApplyRuntimeOptions(const RuntimeOptions& options);

/// Back-compat shim: applies config.runtime (historical name from when the
/// only runtime knob was the pool width).
void ApplyThreadConfig(const ResuFormerConfig& config);

}  // namespace core
}  // namespace resuformer

#endif  // RESUFORMER_CORE_CONFIG_H_
