#ifndef RESUFORMER_CORE_CONFIG_H_
#define RESUFORMER_CORE_CONFIG_H_

namespace resuformer {
namespace core {

/// Hyper-parameters of the hierarchical multi-modal model and its training.
/// Paper values are quoted in comments; defaults are the CPU-scale settings
/// from DESIGN.md Section 6 (all comparisons in the benches are run under
/// identical budgets, so only relative results are interpreted).
struct ResuFormerConfig {
  // --- architecture ---
  int hidden = 32;           // paper: 768
  int sentence_layers = 2;   // paper: 6 (RoBERTa-initialized)
  int document_layers = 2;   // paper: 4
  int num_heads = 4;         // paper: 12
  int ffn = 64;              // paper: 3072
  float dropout = 0.1f;
  int max_tokens_per_sentence = 24;  // paper: 55
  int max_sentences = 64;            // paper: 350
  int vocab_size = 2000;     // set from the trained tokenizer
  int layout_buckets = 33;   // coordinate buckets over [0, 1000]
  int lstm_hidden = 32;      // fine-tuning BiLSTM width (paper: 256)

  // --- pre-training objectives (Section IV-A2) ---
  float word_mask_prob = 0.15f;     // MLLM masking rate (BERT convention)
  float sentence_mask_frac = 0.2f;  // k / m for SCL ("0.2 in all sentences")
  float next_sentence_frac = 0.2f;  // L / m for DNSP
  float tau = 0.8f;                 // contrastive temperature
  float lambda1 = 0.4f;             // weight of L_wp
  float lambda2 = 1.0f;             // weight of L_cl
  float lambda3 = 0.6f;             // weight of L_ns
  int mllm_sentences_per_doc = 4;   // sentences re-encoded per MLLM step

  // --- optimization ---
  // The paper uses 5e-5 / 1e-3; tiny-from-scratch models train with
  // proportionally larger encoder rates.
  float pretrain_lr = 1e-3f;
  float finetune_encoder_lr = 5e-4f;
  float finetune_head_lr = 1e-3f;
  float weight_decay = 0.01f;
  float grad_clip = 5.0f;

  // --- runtime ---
  // Worker threads for the tensor kernels (GEMM, softmax, layernorm, ...).
  // 0 = the RESUFORMER_THREADS env var when set, else hardware concurrency;
  // 1 = exact legacy serial behavior. Results are deterministic for any
  // fixed value. Applied via ApplyThreadConfig when a model is constructed.
  int threads = 0;

  // Fused multi-head attention kernel (ops::FusedMultiHeadAttention). The
  // fused forward is bit-identical to the composed reference at any thread
  // count; gradients agree to float rounding. false selects the composed
  // per-head op chain (the equivalence oracle used by the tests).
  bool use_fused_attention = true;

  // Recycle tensor storage through the global TensorArena free-list instead
  // of hitting the allocator on every op. Applied via ApplyThreadConfig.
  bool use_tensor_arena = true;
};

/// Sizes the global tensor thread pool from config.threads (see above).
/// Idempotent; model constructors call it so the knob takes effect without
/// any extra wiring at call sites.
void ApplyThreadConfig(const ResuFormerConfig& config);

}  // namespace core
}  // namespace resuformer

#endif  // RESUFORMER_CORE_CONFIG_H_
