#ifndef RESUFORMER_CORE_BLOCK_CLASSIFIER_H_
#define RESUFORMER_CORE_BLOCK_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "core/hierarchical_encoder.h"
#include "crf/linear_crf.h"
#include "nn/lstm.h"
#include "nn/mlp.h"

namespace resuformer {
namespace core {

/// A labeled example: encoded document plus one gold IOB block label per
/// (kept) sentence.
struct LabeledDocument {
  EncodedDocument document;
  std::vector<int> labels;
};

/// Fine-tuning options (Section IV-A3; learning rates from the paper's
/// implementation details, scaled per DESIGN.md).
struct FinetuneOptions {
  int epochs = 8;
  int patience = 3;        // early stopping on validation F1
  bool verbose = false;
};

/// \brief ResuFormer's resume block classifier: hierarchical encoder ->
/// BiLSTM -> MLP -> linear-chain CRF (Eq. 8), Viterbi at inference.
class BlockClassifier : public nn::Module {
 public:
  BlockClassifier(const ResuFormerConfig& config, Rng* rng);

  /// Emission scores [m, kNumIobLabels] for the document's sentences.
  Tensor Emissions(const EncodedDocument& document, Rng* dropout_rng) const;

  /// Sentence-CRF loss of the gold labels.
  Tensor Loss(const LabeledDocument& example, Rng* dropout_rng) const;

  /// Viterbi-decoded IOB labels (inference; no autograd).
  std::vector<int> Predict(const EncodedDocument& document) const;

  HierarchicalEncoder* encoder() { return encoder_.get(); }
  const HierarchicalEncoder* encoder() const { return encoder_.get(); }

  // Task-head access for the inference planner, which traces the
  // encoder -> BiLSTM -> projection chain and Viterbi-decodes the replayed
  // emissions through the same CRF.
  const nn::BiLstm* bilstm() const { return bilstm_.get(); }
  const nn::Mlp* projection() const { return projection_.get(); }
  const crf::LinearCrf* crf() const { return crf_.get(); }
  const ResuFormerConfig& config() const { return config_; }

  /// Parameters of the task head only (BiLSTM + MLP + CRF), which fine-tune
  /// at a higher learning rate than the encoder.
  std::vector<Tensor> HeadParameters() const;

 private:
  ResuFormerConfig config_;
  std::unique_ptr<HierarchicalEncoder> encoder_;
  std::unique_ptr<nn::BiLstm> bilstm_;
  std::unique_ptr<nn::Mlp> projection_;
  std::unique_ptr<crf::LinearCrf> crf_;
};

/// Encodes a parsed document and pairs it with (truncated) gold labels.
LabeledDocument MakeLabeledDocument(const doc::Document& document,
                                    const text::WordPieceTokenizer& tokenizer,
                                    const ResuFormerConfig& config);

/// Sentence-level micro-F1 against gold labels (used for early stopping).
double SentenceLabelAccuracy(const BlockClassifier& model,
                             const std::vector<LabeledDocument>& docs);

/// Fine-tunes `model` on `train`, early-stopping on `val` accuracy; returns
/// the best validation accuracy reached. Uses the paper's two learning-rate
/// groups (encoder vs head).
double FinetuneBlockClassifier(BlockClassifier* model,
                               const std::vector<LabeledDocument>& train,
                               const std::vector<LabeledDocument>& val,
                               const FinetuneOptions& options, Rng* rng);

}  // namespace core
}  // namespace resuformer

#endif  // RESUFORMER_CORE_BLOCK_CLASSIFIER_H_
