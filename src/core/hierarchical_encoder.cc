#include "core/hierarchical_encoder.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"
#include "doc/geometry.h"
#include "tensor/ops.h"
#include "tensor/plan.h"

namespace resuformer {
namespace core {

int LayoutBucketIndex(int coord, int buckets) {
  const int b = coord * buckets / 1001;
  return std::clamp(b, 0, buckets - 1);
}

namespace {

LayoutTuple MakeLayoutTuple(const doc::BBox& box, float page_width,
                            float page_height, int page, int num_pages) {
  LayoutTuple t;
  t[0] = doc::NormalizeCoord(box.x0, page_width);
  t[1] = doc::NormalizeCoord(box.y0, page_height);
  t[2] = doc::NormalizeCoord(box.x1, page_width);
  t[3] = doc::NormalizeCoord(box.y1, page_height);
  t[4] = doc::NormalizeCoord(box.width(), page_width);
  t[5] = doc::NormalizeCoord(box.height(), page_height);
  t[6] = num_pages > 0 ? std::min(page * 1000 / std::max(num_pages, 1), 1000)
                       : 0;
  return t;
}

}  // namespace

EncodedDocument EncodeForModel(const doc::Document& document,
                               const text::WordPieceTokenizer& tokenizer,
                               const ResuFormerConfig& config) {
  EncodedDocument out;
  out.num_pages = document.num_pages;
  const int max_sentences = config.max_sentences;
  const int max_tokens = config.max_tokens_per_sentence;

  for (const doc::Sentence& sentence : document.sentences) {
    if (static_cast<int>(out.sentences.size()) >= max_sentences) break;
    EncodedSentence enc;
    enc.sentence_layout =
        MakeLayoutTuple(sentence.box, document.page_width,
                        document.page_height, sentence.page,
                        document.num_pages);
    enc.visual = doc::ComputeVisualFeatures(
        sentence, document.page_width, document.page_height,
        document.num_pages);
    // [CLS] carries the sentence-level layout.
    enc.token_ids.push_back(text::kClsId);
    enc.token_layout.push_back(enc.sentence_layout);
    for (const doc::Token& token : sentence.tokens) {
      const LayoutTuple tuple =
          MakeLayoutTuple(token.box, document.page_width,
                          document.page_height, token.page,
                          document.num_pages);
      for (int id : tokenizer.Encode(token.word)) {
        if (static_cast<int>(enc.token_ids.size()) >= max_tokens) break;
        enc.token_ids.push_back(id);
        enc.token_layout.push_back(tuple);
      }
      if (static_cast<int>(enc.token_ids.size()) >= max_tokens) break;
    }
    out.sentences.push_back(std::move(enc));
  }
  return out;
}

HierarchicalEncoder::HierarchicalEncoder(const ResuFormerConfig& config,
                                         Rng* rng)
    : config_(config) {
  ApplyThreadConfig(config);
  const int d = config.hidden;
  token_embedding_ =
      std::make_unique<nn::Embedding>(config.vocab_size, d, rng);
  token_position_embedding_ = std::make_unique<nn::Embedding>(
      config.max_tokens_per_sentence, d, rng);
  segment_embedding_ = std::make_unique<nn::Embedding>(2, d, rng);
  for (int i = 0; i < 7; ++i) {
    layout_embeddings_.push_back(
        std::make_unique<nn::Embedding>(config.layout_buckets, d, rng));
    RegisterModule(layout_embeddings_.back().get());
  }
  nn::TransformerConfig sent_cfg{d, config.sentence_layers, config.num_heads,
                                 config.ffn, config.dropout,
                                 config.runtime.use_fused_attention};
  sentence_encoder_ = std::make_unique<nn::TransformerEncoder>(sent_cfg, rng);
  sentence_dense_ = std::make_unique<nn::Linear>(d, d, rng);
  mlm_bias_ = RegisterParameter(Tensor::Zeros({config.vocab_size}));

  fusion_ =
      std::make_unique<nn::Linear>(d + doc::kVisualFeatureDim, d, rng);
  sentence_position_embedding_ =
      std::make_unique<nn::Embedding>(config.max_sentences, d, rng);
  nn::TransformerConfig doc_cfg{d, config.document_layers, config.num_heads,
                                config.ffn, config.dropout,
                                config.runtime.use_fused_attention};
  document_encoder_ = std::make_unique<nn::TransformerEncoder>(doc_cfg, rng);
  mask_vector_ = RegisterParameter(Tensor::Randn({1, d}, rng, 0.02f));

  RegisterModule(token_embedding_.get());
  RegisterModule(token_position_embedding_.get());
  RegisterModule(segment_embedding_.get());
  RegisterModule(sentence_encoder_.get());
  RegisterModule(sentence_dense_.get());
  RegisterModule(fusion_.get());
  RegisterModule(sentence_position_embedding_.get());
  RegisterModule(document_encoder_.get());
}

Tensor HierarchicalEncoder::LayoutEmbedding(
    const std::vector<LayoutTuple>& tuples) const {
  // Sum of the seven per-feature embeddings (Eq. 2's concatenation followed
  // by projection, fused into additive tables of full width).
  std::vector<int> ids(tuples.size());
  Tensor total;
  for (int f = 0; f < 7; ++f) {
    for (size_t i = 0; i < tuples.size(); ++i) {
      ids[i] = LayoutBucketIndex(tuples[i][f], config_.layout_buckets);
    }
    // Capture point: layout bucket ids vary per document, so a plan trace
    // rebinds this gather under the per-feature role.
    plan::AnnotateNextGather(plan::kRoleLayout0 + f);
    Tensor emb = layout_embeddings_[f]->Forward(ids);
    total = total.defined() ? ops::Add(total, emb) : emb;
  }
  return total;
}

Tensor HierarchicalEncoder::SentenceTokenStates(
    const EncodedSentence& sentence, const std::vector<int>& ids,
    Rng* dropout_rng) const {
  RF_CHECK_EQ(ids.size(), sentence.token_layout.size());
  const int t_len = static_cast<int>(ids.size());
  std::vector<int> positions(t_len);
  for (int i = 0; i < t_len; ++i) positions[i] = i;
  std::vector<int> segments(t_len, 0);  // single-segment sentences: [A]

  // Capture point: token ids are the replay-variable input of a sentence
  // plan. Positions and segments are T-determined, so their gathers stay
  // literal in the trace.
  plan::AnnotateNextGather(plan::kRoleTokenIds);
  Tensor x = token_embedding_->Forward(ids);                    // Eq. 1
  x = ops::Add(x, token_position_embedding_->Forward(positions));
  x = ops::Add(x, segment_embedding_->Forward(segments));
  x = ops::Add(x, LayoutEmbedding(sentence.token_layout));      // Eq. 2
  return sentence_encoder_->Forward(x, Tensor(), dropout_rng);
}

Tensor HierarchicalEncoder::SentenceRepresentation(
    const EncodedSentence& sentence, const std::vector<int>& ids,
    Rng* dropout_rng) const {
  Tensor states = SentenceTokenStates(sentence, ids, dropout_rng);
  // [CLS] state -> dense -> L2 normalize (Figure 2).
  Tensor cls = ops::SliceRows(states, 0, 1);
  return ops::L2NormalizeRows(sentence_dense_->Forward(cls));
}

Tensor HierarchicalEncoder::FuseVisual(const Tensor& h,
                                       const Tensor& visual) const {
  return fusion_->Forward(ops::ConcatCols({h, visual}));
}

Tensor HierarchicalEncoder::BuildVisualTensor(
    const EncodedDocument& document) const {
  const int m = static_cast<int>(document.sentences.size());
  Tensor visual = Tensor::Zeros({m, doc::kVisualFeatureDim});
  for (int i = 0; i < m; ++i) {
    const auto& v = document.sentences[i].visual;
    for (int j = 0; j < doc::kVisualFeatureDim; ++j) {
      visual.at(i, j) = v[j];
    }
  }
  return visual;
}

Tensor HierarchicalEncoder::EncodeSentences(const EncodedDocument& document,
                                            Rng* dropout_rng) const {
  TRACE_SPAN("encoder.sentences");
  RF_CHECK(!document.sentences.empty());
  std::vector<Tensor> reps;
  reps.reserve(document.sentences.size());
  for (const EncodedSentence& sentence : document.sentences) {
    reps.push_back(
        SentenceRepresentation(sentence, sentence.token_ids, dropout_rng));
  }
  Tensor h = ops::ConcatRows(reps);  // [m, hidden]
  // Two-modal fusion h* = proj([h; v]).
  return FuseVisual(h, BuildVisualTensor(document));
}

Tensor HierarchicalEncoder::EncodeDocument(const Tensor& h_star,
                                           const EncodedDocument& document,
                                           Rng* dropout_rng) const {
  TRACE_SPAN("encoder.document");
  const int m = h_star.rows();
  RF_CHECK_EQ(m, static_cast<int>(document.sentences.size()));
  std::vector<int> positions(m);
  std::vector<LayoutTuple> tuples(m);
  for (int i = 0; i < m; ++i) {
    positions[i] = std::min(i, config_.max_sentences - 1);
    tuples[i] = document.sentences[i].sentence_layout;
  }
  Tensor x = ops::Add(h_star, sentence_position_embedding_->Forward(positions));
  x = ops::Add(x, LayoutEmbedding(tuples));
  return document_encoder_->Forward(x, Tensor(), dropout_rng);
}

Tensor HierarchicalEncoder::Encode(const EncodedDocument& document,
                                   Rng* dropout_rng) const {
  return EncodeDocument(EncodeSentences(document, dropout_rng), document,
                        dropout_rng);
}

Tensor HierarchicalEncoder::VocabLogits(const Tensor& token_states) const {
  // Weight tying: logits = states * E^T + b (transpose-free kernel — the
  // vocab-sized transpose would be the largest temporary in pre-training).
  Tensor logits =
      ops::MatMulTransposedB(token_states, token_embedding_->weight());
  return ops::Add(logits, mlm_bias_);
}

}  // namespace core
}  // namespace resuformer
