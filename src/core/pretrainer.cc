#include "core/pretrainer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"
#include "text/vocab.h"

namespace resuformer {
namespace core {

Pretrainer::Pretrainer(HierarchicalEncoder* encoder, Rng* rng,
                       PretrainObjectives objectives)
    : encoder_(encoder), rng_(rng), objectives_(objectives) {
  const int d = encoder->config().hidden;
  dnsp_matrix_ = Tensor::Randn({d, d}, rng, 0.05f);
  dnsp_matrix_.set_requires_grad(true);
  scl_projection_ = Tensor::Randn({d, d}, rng, 0.1f);
  scl_projection_.set_requires_grad(true);
  dnsp_projection_ = Tensor::Randn({d, d}, rng, 0.1f);
  dnsp_projection_.set_requires_grad(true);
}

Tensor Pretrainer::MllmLoss(const EncodedDocument& doc) {
  const ResuFormerConfig& cfg = encoder_->config();
  const int m = static_cast<int>(doc.sentences.size());
  const int sample = std::min(cfg.mllm_sentences_per_doc, m);
  const std::vector<int> chosen = rng_->SampleWithoutReplacement(m, sample);

  std::vector<Tensor> losses;
  for (int s : chosen) {
    const EncodedSentence& sentence = doc.sentences[s];
    const int t_len = static_cast<int>(sentence.token_ids.size());
    std::vector<int> masked_ids = sentence.token_ids;
    std::vector<int> targets(t_len, -1);
    int masked = 0;
    for (int t = 1; t < t_len; ++t) {  // never mask [CLS]
      if (!rng_->Bernoulli(cfg.word_mask_prob)) continue;
      targets[t] = sentence.token_ids[t];
      const double roll = rng_->Uniform();
      if (roll < 0.8) {
        masked_ids[t] = text::kMaskId;
      } else if (roll < 0.9) {
        masked_ids[t] = rng_->UniformInt(cfg.vocab_size);
      }  // else keep original
      ++masked;
    }
    if (masked == 0 && t_len > 1) {  // guarantee at least one masked token
      const int t = 1 + rng_->UniformInt(t_len - 1);
      targets[t] = sentence.token_ids[t];
      masked_ids[t] = text::kMaskId;
    }
    Tensor states =
        encoder_->SentenceTokenStates(sentence, masked_ids, rng_);
    // Project only the masked positions into the vocabulary.
    std::vector<int> positions;
    std::vector<int> position_targets;
    for (int t = 0; t < t_len; ++t) {
      if (targets[t] >= 0) {
        positions.push_back(t);
        position_targets.push_back(targets[t]);
      }
    }
    if (positions.empty()) continue;
    Tensor logits =
        encoder_->VocabLogits(ops::GatherRows(states, positions));
    losses.push_back(ops::CrossEntropy(logits, position_targets));
  }
  if (losses.empty()) return Tensor::Zeros({1});
  Tensor total = losses[0];
  for (size_t i = 1; i < losses.size(); ++i) {
    total = ops::Add(total, losses[i]);
  }
  return ops::Scale(total, 1.0f / static_cast<float>(losses.size()));
}

PretrainStats Pretrainer::Step(
    const std::vector<const EncodedDocument*>& batch,
    nn::Optimizer* optimizer) {
  const ResuFormerConfig& cfg = encoder_->config();
  PretrainStats stats;
  optimizer->ZeroGrad();

  std::vector<Tensor> loss_terms;

  // Objective #1: MLLM.
  if (objectives_.mllm) {
    std::vector<Tensor> mllm;
    for (const EncodedDocument* doc : batch) {
      mllm.push_back(MllmLoss(*doc));
    }
    Tensor total = mllm[0];
    for (size_t i = 1; i < mllm.size(); ++i) total = ops::Add(total, mllm[i]);
    total = ops::Scale(total, 1.0f / static_cast<float>(mllm.size()));
    stats.mllm_loss = total.item();
    loss_terms.push_back(ops::Scale(total, cfg.lambda1));
  }

  // Objectives #2 and #3 share the sentence/document passes.
  if (objectives_.scl || objectives_.dnsp) {
    std::vector<Tensor> scl_contextual, scl_original;
    std::vector<Tensor> dnsp_left, dnsp_right;
    for (const EncodedDocument* doc : batch) {
      const int m = static_cast<int>(doc->sentences.size());
      Tensor h_star = encoder_->EncodeSentences(*doc, rng_);

      // Dynamic sentence masking: a fresh sample every step (Section
      // IV-A2's dynamic strategy).
      std::vector<int> masked_indices;
      Tensor doc_input = h_star;
      if (objectives_.scl && m >= 2) {
        const int k =
            std::max(1, static_cast<int>(std::floor(cfg.sentence_mask_frac *
                                                    m)));
        masked_indices = rng_->SampleWithoutReplacement(m, k);
        std::sort(masked_indices.begin(), masked_indices.end());
        // Rebuild the row matrix with masked rows swapped for the learned
        // mask vector.
        std::vector<Tensor> rows;
        rows.reserve(m);
        size_t next = 0;
        for (int i = 0; i < m; ++i) {
          if (next < masked_indices.size() && masked_indices[next] == i) {
            rows.push_back(encoder_->mask_vector());
            ++next;
          } else {
            rows.push_back(ops::SliceRows(h_star, i, 1));
          }
        }
        doc_input = ops::ConcatRows(rows);
      }
      Tensor contextual = encoder_->EncodeDocument(doc_input, *doc, rng_);

      if (objectives_.scl) {
        for (int idx : masked_indices) {
          scl_contextual.push_back(ops::SliceRows(contextual, idx, 1));
          // Stop-gradient on the ground-truth representations: letting the
          // targets chase the predictions collapses the sentence space at
          // this model scale (BYOL-style asymmetry; implementation note in
          // DESIGN.md).
          scl_original.push_back(ops::SliceRows(h_star, idx, 1).Detach());
        }
      }
      if (objectives_.dnsp && m >= 2) {
        const int l =
            std::max(1, static_cast<int>(std::floor(cfg.next_sentence_frac *
                                                    m)));
        // Sample L positions with a next sentence (dynamic each step). The
        // right side is the next sentence's *content* representation h*
        // (detached): matching contextual states against contextual states
        // is solvable from position embeddings alone at this model scale,
        // which destroys content information (implementation note in
        // DESIGN.md).
        std::vector<int> starts =
            rng_->SampleWithoutReplacement(m - 1, std::min(l, m - 1));
        for (int i : starts) {
          dnsp_left.push_back(ops::SliceRows(contextual, i, 1));
          dnsp_right.push_back(ops::SliceRows(h_star, i + 1, 1).Detach());
        }
      }
    }

    // Objective #2 loss (Eq. 3-4): in-batch contrastive alignment.
    if (objectives_.scl && scl_contextual.size() >= 2) {
      // The contextual side passes through a projection head, and rows are
      // L2-normalized before the similarity (cosine form): unnormalized
      // tiny-model dot products saturate the softmax.
      Tensor hd = ops::L2NormalizeRows(
          ops::MatMul(ops::ConcatRows(scl_contextual), scl_projection_));
      Tensor hs = ops::L2NormalizeRows(ops::ConcatRows(scl_original));
      Tensor sim = ops::Scale(ops::MatMulTransposedB(hd, hs), 1.0f / cfg.tau);
      std::vector<int> diag(sim.rows());
      for (int i = 0; i < sim.rows(); ++i) diag[i] = i;
      Tensor loss = ops::CrossEntropy(sim, diag);
      stats.scl_loss = loss.item();
      loss_terms.push_back(ops::Scale(loss, cfg.lambda2));
    }

    // Objective #3 loss (Eq. 5-6): bilinear next-sentence alignment.
    if (objectives_.dnsp && dnsp_left.size() >= 2) {
      Tensor left = ops::MatMul(ops::ConcatRows(dnsp_left),
                                dnsp_projection_);  // [L, D]
      Tensor right = ops::ConcatRows(dnsp_right);   // [L, D]
      Tensor scores =
          ops::MatMulTransposedB(ops::MatMul(left, dnsp_matrix_), right);
      std::vector<int> diag(scores.rows());
      for (int i = 0; i < scores.rows(); ++i) diag[i] = i;
      Tensor loss = ops::CrossEntropy(scores, diag);
      stats.dnsp_loss = loss.item();
      loss_terms.push_back(ops::Scale(loss, cfg.lambda3));
    }
  }

  if (loss_terms.empty()) return stats;
  Tensor total = loss_terms[0];
  for (size_t i = 1; i < loss_terms.size(); ++i) {
    total = ops::Add(total, loss_terms[i]);
  }
  stats.total_loss = total.item();
  total.Backward();
  optimizer->ClipGradNorm(encoder_->config().grad_clip);
  optimizer->Step();
  return stats;
}

PretrainStats Pretrainer::Train(const std::vector<EncodedDocument>& corpus,
                                int epochs, int batch_size,
                                float learning_rate) {
  std::vector<Tensor> params = encoder_->Parameters();
  params.push_back(dnsp_matrix_);
  nn::Adam adam(params, learning_rate, 0.9f, 0.999f, 1e-8f,
                encoder_->config().weight_decay);

  PretrainStats last_epoch;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const std::vector<int> order =
        rng_->Permutation(static_cast<int>(corpus.size()));
    PretrainStats epoch_stats;
    int steps = 0;
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(batch_size)) {
      std::vector<const EncodedDocument*> batch;
      for (size_t i = begin;
           i < std::min(order.size(), begin + batch_size); ++i) {
        if (!corpus[order[i]].sentences.empty()) {
          batch.push_back(&corpus[order[i]]);
        }
      }
      if (batch.empty()) continue;
      const PretrainStats s = Step(batch, &adam);
      epoch_stats.mllm_loss += s.mllm_loss;
      epoch_stats.scl_loss += s.scl_loss;
      epoch_stats.dnsp_loss += s.dnsp_loss;
      epoch_stats.total_loss += s.total_loss;
      ++steps;
    }
    if (steps > 0) {
      epoch_stats.mllm_loss /= steps;
      epoch_stats.scl_loss /= steps;
      epoch_stats.dnsp_loss /= steps;
      epoch_stats.total_loss /= steps;
    }
    last_epoch = epoch_stats;
    RF_LOG(Debug) << "pretrain epoch " << epoch << " total="
                  << epoch_stats.total_loss;
  }
  return last_epoch;
}

}  // namespace core
}  // namespace resuformer
