#include "common/runtime_options.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace resuformer {

namespace {

/// "0", "false", "off", "no" (any case) → false; anything else set → true.
bool ParseBoolEnv(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  std::string v(env);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return !(v == "0" || v == "false" || v == "off" || v == "no");
}

}  // namespace

namespace envparse {

namespace {

/// Shared strict base-10 parse: full-string integer, overflow rejected.
bool ParseFullInt(const char* text, long* out) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;  // no digits / trailing junk
  if (errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace

int IntFromEnv(const char* name, int fallback, int min_value, int max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  // std::atoi is undefined on overflow; strtol reports it via ERANGE and
  // hands back where parsing stopped, so malformed or out-of-range values
  // ("8x", "1e3", "99999999999999999999") fall back instead of aborting or
  // silently truncating.
  long v = 0;
  if (!ParseFullInt(env, &v)) return fallback;
  if (v < min_value || v > max_value) return fallback;
  return static_cast<int>(v);
}

int StrictIntFromEnv(const char* name, int fallback, int min_value,
                     int max_value, Status* error) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  long v = 0;
  const bool parsed = ParseFullInt(env, &v);
  if (parsed && v >= min_value && v <= max_value) return static_cast<int>(v);
  if (error != nullptr && error->ok()) {  // first error wins
    *error = Status::InvalidArgument(
        std::string(name) + " must be an integer in [" +
        std::to_string(min_value) + ", " + std::to_string(max_value) +
        "], got '" + env + "'");
  }
  return fallback;
}

}  // namespace envparse

RuntimeOptions RuntimeOptions::FromEnv(Status* strict_error) {
  RuntimeOptions opts;
  Status strict;
  // threads stays 0 ("auto") unless the env names an explicit width; the
  // thread pool resolves 0 through the same variable, so either path agrees.
  opts.threads = envparse::IntFromEnv("RESUFORMER_THREADS", 0, 1, 256);
  opts.use_fused_attention =
      ParseBoolEnv("RESUFORMER_FUSED_ATTENTION", opts.use_fused_attention);
  opts.use_tensor_arena =
      ParseBoolEnv("RESUFORMER_TENSOR_ARENA", opts.use_tensor_arena);
  opts.use_inference_plan =
      ParseBoolEnv("RESUFORMER_USE_PLAN", opts.use_inference_plan);
  opts.use_int8 = ParseBoolEnv("RESUFORMER_USE_INT8", opts.use_int8);
  opts.save_rfp3 = ParseBoolEnv("RESUFORMER_SAVE_RFP3", opts.save_rfp3);
  opts.enable_metrics =
      ParseBoolEnv("RESUFORMER_METRICS", opts.enable_metrics);
  opts.enable_tracing = ParseBoolEnv("RESUFORMER_TRACE", opts.enable_tracing);
  // Strict: a mis-sized span ring silently shrinking to the default would
  // make a capture look complete when it is not.
  opts.trace_buffer_capacity =
      envparse::StrictIntFromEnv("RESUFORMER_TRACE_CAPACITY",
                                 opts.trace_buffer_capacity, 16, 1 << 24,
                                 &strict);

  // Serving knobs are strict (see the header): zero/negative or malformed
  // values keep the default and surface an error naming the variable.
  opts.serve_max_batch = envparse::StrictIntFromEnv(
      "RESUFORMER_SERVE_MAX_BATCH", opts.serve_max_batch, 1, 4096, &strict);
  opts.serve_max_queue_delay_ms = envparse::StrictIntFromEnv(
      "RESUFORMER_SERVE_MAX_QUEUE_DELAY_MS", opts.serve_max_queue_delay_ms, 1,
      60 * 1000, &strict);
  opts.serve_queue_capacity = envparse::StrictIntFromEnv(
      "RESUFORMER_SERVE_QUEUE_CAPACITY", opts.serve_queue_capacity, 1,
      1 << 20, &strict);
  opts.serve_workers = envparse::StrictIntFromEnv(
      "RESUFORMER_SERVE_WORKERS", opts.serve_workers, 1, 256, &strict);
  opts.serve_stats_window_ms = envparse::StrictIntFromEnv(
      "RESUFORMER_SERVE_STATS_WINDOW_MS", opts.serve_stats_window_ms, 10,
      24 * 60 * 60 * 1000, &strict);
  opts.serve_slow_trace_us = envparse::StrictIntFromEnv(
      "RESUFORMER_SERVE_SLOW_TRACE_US", opts.serve_slow_trace_us, 0,
      INT32_MAX, &strict);
  const char* slow_dir = std::getenv("RESUFORMER_SERVE_SLOW_TRACE_DIR");
  if (slow_dir != nullptr && slow_dir[0] != '\0') {
    opts.serve_slow_trace_dir = slow_dir;
  }
  if (strict_error != nullptr) {
    *strict_error = strict;
  } else {
    WarnIfError(strict, "RuntimeOptions::FromEnv");
  }
  return opts;
}

}  // namespace resuformer
