#include "common/runtime_options.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

namespace resuformer {

namespace {

/// "0", "false", "off", "no" (any case) → false; anything else set → true.
bool ParseBoolEnv(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  std::string v(env);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return !(v == "0" || v == "false" || v == "off" || v == "no");
}

}  // namespace

namespace envparse {

int IntFromEnv(const char* name, int fallback, int min_value, int max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  // std::atoi is undefined on overflow; strtol reports it via ERANGE and
  // hands back where parsing stopped, so malformed or out-of-range values
  // ("8x", "1e3", "99999999999999999999") fall back instead of aborting or
  // silently truncating.
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') return fallback;  // no digits / trailing junk
  if (errno == ERANGE || v < min_value || v > max_value) return fallback;
  return static_cast<int>(v);
}

}  // namespace envparse

RuntimeOptions RuntimeOptions::FromEnv() {
  RuntimeOptions opts;
  // threads stays 0 ("auto") unless the env names an explicit width; the
  // thread pool resolves 0 through the same variable, so either path agrees.
  opts.threads = envparse::IntFromEnv("RESUFORMER_THREADS", 0, 1, 256);
  opts.use_fused_attention =
      ParseBoolEnv("RESUFORMER_FUSED_ATTENTION", opts.use_fused_attention);
  opts.use_tensor_arena =
      ParseBoolEnv("RESUFORMER_TENSOR_ARENA", opts.use_tensor_arena);
  opts.use_inference_plan =
      ParseBoolEnv("RESUFORMER_USE_PLAN", opts.use_inference_plan);
  opts.use_int8 = ParseBoolEnv("RESUFORMER_USE_INT8", opts.use_int8);
  opts.save_rfp3 = ParseBoolEnv("RESUFORMER_SAVE_RFP3", opts.save_rfp3);
  opts.enable_metrics =
      ParseBoolEnv("RESUFORMER_METRICS", opts.enable_metrics);
  opts.enable_tracing = ParseBoolEnv("RESUFORMER_TRACE", opts.enable_tracing);
  opts.trace_buffer_capacity =
      envparse::IntFromEnv("RESUFORMER_TRACE_CAPACITY",
                           opts.trace_buffer_capacity, 16, 1 << 24);
  return opts;
}

}  // namespace resuformer
