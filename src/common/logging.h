#ifndef RESUFORMER_COMMON_LOGGING_H_
#define RESUFORMER_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace resuformer {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted to stderr (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; flushes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts the process after flushing; used by RF_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define RF_LOG(level)                                                   \
  ::resuformer::internal::LogMessage(::resuformer::LogLevel::k##level, \
                                     __FILE__, __LINE__)

/// Invariant check: aborts with a message when `cond` is false. Used for
/// programmer errors (shape mismatches etc.), not recoverable conditions —
/// those return Status.
#define RF_CHECK(cond)                                              \
  if (!(cond))                                                      \
  ::resuformer::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define RF_CHECK_EQ(a, b) RF_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define RF_CHECK_LT(a, b) RF_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define RF_CHECK_LE(a, b) RF_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define RF_CHECK_GT(a, b) RF_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define RF_CHECK_GE(a, b) RF_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

/// Debug-only invariant checks for hot-path preconditions (tensor shapes,
/// kernel strides, autograd graph structure). Active in Debug builds and
/// whenever the build sets -DRESUFORMER_DCHECK_ENABLED=1 (CMake option
/// RESUFORMER_DCHECK=ON, or the `dcheck` preset); compiled out otherwise —
/// the condition is parsed but never evaluated, so a disabled RF_DCHECK
/// costs nothing at runtime.
#if !defined(RESUFORMER_DCHECK_ENABLED)
#if !defined(NDEBUG)
#define RESUFORMER_DCHECK_ENABLED 1
#else
#define RESUFORMER_DCHECK_ENABLED 0
#endif
#endif

#if RESUFORMER_DCHECK_ENABLED
#define RF_DCHECK(cond) RF_CHECK(cond)
#define RF_DCHECK_EQ(a, b) RF_CHECK_EQ(a, b)
#define RF_DCHECK_LT(a, b) RF_CHECK_LT(a, b)
#define RF_DCHECK_LE(a, b) RF_CHECK_LE(a, b)
#define RF_DCHECK_GT(a, b) RF_CHECK_GT(a, b)
#define RF_DCHECK_GE(a, b) RF_CHECK_GE(a, b)
#else
// `while (false)` makes the whole statement (including streamed message
// operands) dead code the optimizer deletes, while keeping it syntactically
// identical to the enabled form.
#define RF_DCHECK(cond) \
  while (false) RF_CHECK(cond)
#define RF_DCHECK_EQ(a, b) \
  while (false) RF_CHECK_EQ(a, b)
#define RF_DCHECK_LT(a, b) \
  while (false) RF_CHECK_LT(a, b)
#define RF_DCHECK_LE(a, b) \
  while (false) RF_CHECK_LE(a, b)
#define RF_DCHECK_GT(a, b) \
  while (false) RF_CHECK_GT(a, b)
#define RF_DCHECK_GE(a, b) \
  while (false) RF_CHECK_GE(a, b)
#endif

/// True when RF_DCHECK is active in this build; lets tests and validators
/// branch on it (e.g. the autograd graph validator only walks the graph
/// when the checks it feeds are compiled in).
inline constexpr bool DcheckEnabled() { return RESUFORMER_DCHECK_ENABLED != 0; }

}  // namespace resuformer

#endif  // RESUFORMER_COMMON_LOGGING_H_
