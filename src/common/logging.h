#ifndef RESUFORMER_COMMON_LOGGING_H_
#define RESUFORMER_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace resuformer {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted to stderr (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; flushes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts the process after flushing; used by RF_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define RF_LOG(level)                                                   \
  ::resuformer::internal::LogMessage(::resuformer::LogLevel::k##level, \
                                     __FILE__, __LINE__)

/// Invariant check: aborts with a message when `cond` is false. Used for
/// programmer errors (shape mismatches etc.), not recoverable conditions —
/// those return Status.
#define RF_CHECK(cond)                                              \
  if (!(cond))                                                      \
  ::resuformer::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define RF_CHECK_EQ(a, b) RF_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define RF_CHECK_LT(a, b) RF_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define RF_CHECK_LE(a, b) RF_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define RF_CHECK_GT(a, b) RF_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define RF_CHECK_GE(a, b) RF_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

}  // namespace resuformer

#endif  // RESUFORMER_COMMON_LOGGING_H_
