#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace resuformer {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int Rng::UniformInt(int n) {
  RF_CHECK_GT(n, 0);
  return static_cast<int>(Next() % static_cast<uint64_t>(n));
}

double Rng::Uniform() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  for (int i = n - 1; i > 0; --i) {
    const int j = UniformInt(i + 1);
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  RF_CHECK_LE(k, n);
  std::vector<int> perm = Permutation(n);
  perm.resize(k);
  return perm;
}

int Rng::Categorical(const std::vector<double>& weights) {
  RF_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  RF_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace resuformer
