#ifndef RESUFORMER_COMMON_TABLE_PRINTER_H_
#define RESUFORMER_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace resuformer {

/// \brief Fixed-width ASCII table used by the benchmark harnesses to print
/// the paper's tables.
///
/// Usage:
///   TablePrinter t({"Tag", "Ours", "paper"});
///   t.AddRow({"PInfo", "91.2", "91.75"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal separator before the next row.
  void AddSeparator();

  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  // Rows; an empty vector marks a separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace resuformer

#endif  // RESUFORMER_COMMON_TABLE_PRINTER_H_
