#ifndef RESUFORMER_COMMON_METRICS_H_
#define RESUFORMER_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace resuformer {
namespace metrics {

/// \brief Process-wide metrics: named counters, gauges and histograms.
///
/// Design rules (the substrate every serving/batching PR reports through):
///  * The hot path is lock-free: instruments are plain relaxed atomics, and
///    callers hold stable `Counter*`/`Gauge*`/`Histogram*` pointers obtained
///    once (registration takes the registry mutex; updates never do).
///  * Counters and gauges are ALWAYS live — a relaxed fetch_add is cheaper
///    than a branch-to-skip would be worth, and it keeps structural tallies
///    (arena hits, documents parsed) available even in untimed runs.
///  * Anything that needs a clock (ScopedTimerUs, the thread-pool wait/run
///    histograms) is gated on `MetricsRegistry::Enabled()`, a single relaxed
///    atomic load, so `enable_metrics = false` costs one predictable branch
///    per site and zero clock syscalls.
///
/// Snapshot() materializes every instrument into plain structs; ToJson()
/// renders the snapshot as a stable, machine-readable JSON object (consumed
/// by `bench_micro`'s BENCH_MICRO.json sidecar and the CLI --metrics-out).

/// Monotonic counter. Increment is a relaxed atomic add.
class Counter {
 public:
  // Relaxed: a counter is an independent tally — nothing is published
  // through it and readers tolerate slightly stale values.
  void Increment(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Up/down instantaneous value (outstanding buffers, cached bytes, ...).
class Gauge {
 public:
  // Relaxed: same contract as Counter — an isolated instantaneous value,
  // no cross-field ordering required by any reader.
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }  // see above

 private:
  std::atomic<int64_t> value_{0};
};

/// Histogram over int64 samples with fixed log2-scale buckets: bucket 0
/// holds samples <= 0, bucket b (1-based) holds samples in
/// [2^(b-1), 2^b). 48 buckets cover [1, 2^47) — microsecond latencies up
/// to years. Record is a handful of relaxed atomic ops (bucket, count,
/// sum, CAS min/max); no locks, no allocation.
class Histogram {
 public:
  static constexpr int kNumBuckets = 48;

  void Record(int64_t value);

  // Relaxed reads: histogram fields are statistically independent tallies;
  // a snapshot may pair a count with a sum from one sample earlier, which
  // is acceptable for latency statistics (see the header comment).
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// INT64_MAX / INT64_MIN when empty.
  int64_t min() const { return min_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  int64_t bucket_count(int b) const {
    // Relaxed for the same reason as count()/sum() above.
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket b: 0 for bucket 0, else 2^b - 1.
  static int64_t BucketUpperBound(int b);
  void Reset();

  /// Approximate percentile: the inclusive upper bound of the bucket holding
  /// the q-th sample, so resolution is the log2 bucket width — good enough
  /// for p50/p99 latency reporting. The total is derived from the bucket
  /// counts themselves (not count_), so a concurrent Record can never leave
  /// the target rank unreachable. Boundary contract:
  ///  * empty histogram        -> 0 for every q
  ///  * q <= 0                 -> upper bound of the first non-empty bucket
  ///                              (the coarse minimum)
  ///  * q >= 1 (and NaN)       -> upper bound of the last non-empty bucket
  ///                              (the coarse maximum)
  ///  * a single sample        -> its bucket's upper bound for every q
  ///  * samples <= 0           -> land in bucket 0, whose bound is 0; a
  ///                              histogram holding only such samples
  ///                              returns 0 for every q
  /// Reads are relaxed (same contract as count()).
  int64_t ApproxPercentile(double q) const;

 private:
  std::atomic<int64_t> buckets_[kNumBuckets]{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

/// Sliding-window histogram: a ring of `num_epochs` rotating Histogram
/// epochs of `epoch_ns` each. Record() is lock-free and costs the same as a
/// plain Histogram::Record plus one relaxed load (and, once per epoch roll,
/// one CAS + Reset) — cheap enough to run unconditionally on paths that
/// already hold a timestamp, matching the counters-always-live cost model.
///
/// Window(now_ns) merges every epoch still inside the window into one bucket
/// array and reports count/sum/p50/p99 over it. The window covers between
/// (num_epochs - 1) and num_epochs full epochs depending on where `now_ns`
/// falls inside the current epoch, so configure num_epochs for the
/// granularity/error trade-off (10 epochs -> the window is accurate to 10%).
///
/// Epoch rotation is racy by design: a recorder that loses the reset CAS for
/// a fresh epoch may land its sample just before the winner's Reset() wipes
/// it. At most a handful of samples per epoch roll are lost, which is
/// statistically irrelevant for latency percentiles and keeps the record
/// path free of locks.
class RollingHistogram {
 public:
  /// `num_epochs` >= 2 rotating epochs of `epoch_ns` > 0 nanoseconds each.
  RollingHistogram(int num_epochs, int64_t epoch_ns);

  /// Records `value` into the epoch containing `now_ns` (caller supplies the
  /// timestamp — the serve path already has it in hand, so recording never
  /// reads a clock).
  void Record(int64_t value, int64_t now_ns);

  struct WindowSnapshot {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t p50 = 0;  ///< same bucket-bound contract as ApproxPercentile
    int64_t p99 = 0;
  };
  /// Merged statistics over the epochs still inside the window ending at
  /// `now_ns`. Empty window -> all zeros.
  WindowSnapshot Window(int64_t now_ns) const;

  int num_epochs() const { return num_epochs_; }
  int64_t epoch_ns() const { return epoch_ns_; }
  /// Upper bound of the history the window can cover.
  int64_t window_ns() const { return static_cast<int64_t>(num_epochs_) * epoch_ns_; }

 private:
  struct Epoch {
    Histogram hist;
    /// Epoch sequence number (now_ns / epoch_ns) of the samples currently
    /// stored; -1 until first use.
    std::atomic<int64_t> seq{-1};
  };

  const int num_epochs_;
  const int64_t epoch_ns_;
  /// unique_ptr ring because Histogram (atomics) is not movable.
  std::vector<std::unique_ptr<Epoch>> epochs_;
};

/// Plain-struct materialization of the registry (see Snapshot()).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;  // 0 when empty
    int64_t max = 0;  // 0 when empty
    /// Only non-empty buckets, ascending by bound.
    struct Bucket {
      int64_t upper_bound;  // inclusive
      int64_t count;
    };
    std::vector<Bucket> buckets;
  };
  std::vector<CounterValue> counters;    // sorted by name
  std::vector<GaugeValue> gauges;        // sorted by name
  std::vector<HistogramValue> histograms;  // sorted by name

  /// Stable JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {"name": {"count":..,"sum":..,"min":..,"max":..,
  /// "buckets":[{"le":..,"count":..},...]}, ...}}.
  std::string ToJson() const;

  /// Prometheus text exposition (format 0.0.4) of the snapshot. Metric
  /// names are prefixed with "resuformer_" and sanitized (every character
  /// outside [a-zA-Z0-9_:] becomes '_' — our dotted names turn into
  /// underscore names); the original registry name is preserved on the
  /// "# HELP" line with spec escaping (backslash and newline). Histograms
  /// render as cumulative "_bucket{le=...}" series plus "+Inf", "_sum" and
  /// "_count". Served by the kStats admin frame with payload "prometheus".
  std::string ToPrometheusText() const;
};

class MetricsRegistry {
 public:
  /// Process-wide registry. Intentionally leaked so instruments touched
  /// during static teardown stay valid.
  static MetricsRegistry& Global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. Pointers are stable for the process lifetime. Requesting an
  /// existing name with a different instrument kind is a programming error
  /// (checked).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Gates the *timed* instrumentation (ScopedTimerUs, thread-pool queue
  /// wait / run histograms, per-stage pipeline timers). Counters and gauges
  /// stay live regardless — see the header comment.
  void SetEnabled(bool enabled) {
    // Relaxed: the gate is advisory — a site that reads the old value for a
    // few more samples just times (or skips) a handful of extra records.
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  static bool Enabled() {
    // Relaxed: pairs with SetEnabled above; no data is published through
    // the flag, so acquire would buy nothing.
    return Global().enabled_.load(std::memory_order_relaxed);
  }

  MetricsSnapshot Snapshot() const;

  /// Resets every counter and histogram to zero. Gauges are left alone:
  /// they mirror live state (outstanding buffers, cached bytes) that a
  /// metrics reset must not fabricate. Intended for tests and bench runs.
  void ResetCountersAndHistograms();

 private:
  MetricsRegistry() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards the maps only, never the instruments
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Records elapsed microseconds into `h` on destruction. Samples the clock
/// only if the registry was enabled at construction — disabled, both ends
/// cost one relaxed load and a branch.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram* h)
      : histogram_(MetricsRegistry::Enabled() ? h : nullptr) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimerUs() {
    if (histogram_ != nullptr) {
      histogram_->Record(std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start_)
                             .count());
    }
  }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace metrics
}  // namespace resuformer

#endif  // RESUFORMER_COMMON_METRICS_H_
