#ifndef RESUFORMER_COMMON_STRING_UTIL_H_
#define RESUFORMER_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace resuformer {

/// Splits on any of the characters in `delims`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view text,
                                     std::string_view delims = " \t\n");

/// Joins pieces with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view text);

/// Whether `text` starts with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Strips leading/trailing ASCII whitespace.
std::string StripAscii(std::string_view text);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// True when every character is an ASCII digit (and text is non-empty).
bool IsAsciiDigits(std::string_view text);

/// JSON string-body escaping per RFC 8259: `"` and `\` get a backslash,
/// control characters (U+0000..U+001F) become the short escapes
/// (\n, \t, \r, \b, \f) or \u00XX. Returns the escaped body *without*
/// surrounding quotes. Every producer of JSON output must route strings
/// through this (or AppendJsonQuoted) — rf_lint's json-string-concat rule
/// flags raw concatenation of quote literals elsewhere.
std::string JsonEscape(std::string_view text);

/// Appends `text` to *out as a double-quoted, escaped JSON string.
void AppendJsonQuoted(std::string* out, std::string_view text);

}  // namespace resuformer

#endif  // RESUFORMER_COMMON_STRING_UTIL_H_
