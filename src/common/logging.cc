#include "common/logging.h"

#include <cstdio>

namespace resuformer {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace resuformer
