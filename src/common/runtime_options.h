#ifndef RESUFORMER_COMMON_RUNTIME_OPTIONS_H_
#define RESUFORMER_COMMON_RUNTIME_OPTIONS_H_

#include <string>

#include "common/status.h"

namespace resuformer {

/// \brief Every process-level runtime knob in one struct.
///
/// Model hyper-parameters describe *what* to compute; RuntimeOptions
/// describes *how* the process executes it (pool width, kernel selection,
/// allocator recycling, observability). `ResuFormerConfig` embeds one as
/// `runtime`, and model constructors apply it via
/// `core::ApplyRuntimeOptions`, so a single struct flows from config files,
/// env vars or CLI flags down to the thread pool, arena, metrics registry
/// and tracer.
///
/// Environment overrides are resolved in exactly one place —
/// `RuntimeOptions::FromEnv()` — instead of scattered getenv calls:
///
///   RESUFORMER_THREADS          int    worker threads (>=1; 0 = auto)
///   RESUFORMER_FUSED_ATTENTION  0/1    fused vs composed attention path
///   RESUFORMER_TENSOR_ARENA     0/1    tensor-storage recycling
///   RESUFORMER_USE_PLAN         0/1    static inference-plan replay
///   RESUFORMER_USE_INT8         0/1    int8 GEMMs inside plan replay
///   RESUFORMER_SAVE_RFP3        0/1    save mmap-able RFP3 checkpoints
///   RESUFORMER_METRICS          0/1    timed metrics (histograms/timers)
///   RESUFORMER_TRACE            0/1    scoped-span tracing
///
/// Strict knobs (a set but malformed or out-of-range value is an
/// InvalidArgument naming the variable, not a silent clamp; see FromEnv):
///
///   RESUFORMER_TRACE_CAPACITY        int >= 16 per-thread span ring capacity
///   RESUFORMER_SERVE_MAX_BATCH       int >= 1  micro-batch flush size
///   RESUFORMER_SERVE_MAX_QUEUE_DELAY_MS int >= 1  micro-batch flush deadline
///   RESUFORMER_SERVE_QUEUE_CAPACITY  int >= 1  admission-queue bound
///   RESUFORMER_SERVE_WORKERS         int >= 1  server worker threads
///   RESUFORMER_SERVE_STATS_WINDOW_MS int >= 10 sliding stats window
///   RESUFORMER_SERVE_SLOW_TRACE_US   int >= 0  slow-trace threshold (0 = off)
///   RESUFORMER_SERVE_SLOW_TRACE_DIR  string    slow-trace exemplar directory
struct RuntimeOptions {
  // Worker threads for the tensor kernels (GEMM, softmax, layernorm, ...).
  // 0 = the RESUFORMER_THREADS env var when set, else hardware concurrency;
  // 1 = exact legacy serial behavior. Results are deterministic for any
  // fixed value.
  int threads = 0;

  // Fused multi-head attention kernel (ops::FusedMultiHeadAttention). The
  // fused forward is bit-identical to the composed reference at any thread
  // count; gradients agree to float rounding. false selects the composed
  // per-head op chain (the equivalence oracle used by the tests).
  bool use_fused_attention = true;

  // Recycle tensor storage through the global TensorArena free-list instead
  // of hitting the allocator on every op.
  bool use_tensor_arena = true;

  // Route ResuFormerPipeline parses through the static inference-plan cache
  // (trace once per sequence-length bucket, replay per document; see
  // core/inference_plan.h). Output is identical to the dynamic path — any
  // unplannable document falls back automatically. Default off.
  bool use_inference_plan = false;

  // Quantize plan GEMMs with constant weights (Linear layers, attention
  // projections, LSTM gates) to per-tensor symmetric int8 with int32
  // accumulation: weights are quantized once at plan-build time,
  // activations dynamically per replay (see tensor/quant.h). Implies plan
  // routing in the pipeline even when use_inference_plan is off; documents
  // the plan cannot cover still fall back to the dynamic fp32 path. Output
  // is NOT bit-identical to fp32 — the tier-1 accuracy gate bounds the
  // block-accuracy / NER-F1 deltas — but is deterministic at any thread
  // count. Default off.
  bool use_int8 = false;

  // Write checkpoints in the mmap-able RFP3 layout (64-byte-aligned raw
  // payloads; see nn/serialize.h) instead of RFP2. Loading auto-detects
  // the format, so this only affects Save. Default off.
  bool save_rfp3 = false;

  // Enables the *timed* metrics (latency histograms, thread-pool queue-wait
  // sampling). Structural counters (arena hits, documents parsed, GEMM
  // calls) are always live; this knob only gates clock reads.
  bool enable_metrics = false;

  // Enables scoped-span tracing (TRACE_SPAN). Off, every span site costs
  // one relaxed atomic load; on, spans land in per-thread ring buffers
  // exportable as Chrome trace JSON.
  bool enable_tracing = false;

  // Per-thread span ring capacity (most recent spans are kept).
  int trace_buffer_capacity = 8192;

  // --- serving (src/serve admission queue) ---------------------------------
  // A micro-batch flushes when it holds serve_max_batch requests or when its
  // oldest request has waited serve_max_queue_delay_ms, whichever comes
  // first. All four are strictly positive; FromEnv rejects a zero/negative
  // or malformed override with a named-parameter error.
  int serve_max_batch = 8;
  int serve_max_queue_delay_ms = 5;
  // Admitted-but-unclaimed requests beyond this bound are rejected with
  // ResourceExhausted (backpressure), never silently queued.
  int serve_queue_capacity = 256;
  // Server worker threads draining the queue. Each worker replays the shared
  // plan cache; per-document tensor kernels run inline on the worker.
  int serve_workers = 2;

  // --- serving observability plane (PR 9) ----------------------------------
  // Sliding window for the live p50/p99 surfaced by the kStats admin frame.
  // The window is split into 10 rotating epochs, so it must be >= 10 ms.
  int serve_stats_window_ms = 60'000;
  // A served request whose e2e latency reaches this many microseconds has
  // its span window captured as an on-disk Chrome-trace exemplar
  // (rate-limited and bounded; see serve/server.h). 0 disables capture.
  int serve_slow_trace_us = 0;
  // Directory receiving slow-trace exemplars (created on first capture).
  std::string serve_slow_trace_dir = "slow-traces";

  /// Defaults overridden by the RESUFORMER_* environment variables above.
  /// The strict knobs (RESUFORMER_SERVE_*, RESUFORMER_TRACE_CAPACITY) keep
  /// their default when a set value is malformed or out of range, and
  /// `strict_error` (when non-null) receives InvalidArgument naming the
  /// variable — a serving entry point can refuse to start instead of
  /// running misconfigured. Passing nullptr logs the error as a warning.
  /// Only the first strict error is kept.
  [[nodiscard]] static RuntimeOptions FromEnv(Status* strict_error = nullptr);
};

namespace envparse {

/// Strict base-10 parse of the environment variable `name`. Returns
/// `fallback` when the variable is unset, empty, not a full integer
/// (trailing garbage rejected), overflows long/int, or falls outside
/// [min_value, max_value]. Never aborts: a malformed environment degrades
/// to defaults. Shared by RuntimeOptions::FromEnv and DefaultThreadCount so
/// RESUFORMER_THREADS parses identically everywhere.
int IntFromEnv(const char* name, int fallback, int min_value, int max_value);

/// Strict variant for knobs where misconfiguration must be loud: parses like
/// IntFromEnv, but a *set* variable that is malformed or outside
/// [min_value, max_value] keeps `fallback` AND reports InvalidArgument
/// naming the variable through `error` (first error wins; `error` must be
/// non-null). Unset/empty still silently yields `fallback`.
int StrictIntFromEnv(const char* name, int fallback, int min_value,
                     int max_value, Status* error);

}  // namespace envparse

}  // namespace resuformer

#endif  // RESUFORMER_COMMON_RUNTIME_OPTIONS_H_
