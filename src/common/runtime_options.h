#ifndef RESUFORMER_COMMON_RUNTIME_OPTIONS_H_
#define RESUFORMER_COMMON_RUNTIME_OPTIONS_H_

namespace resuformer {

/// \brief Every process-level runtime knob in one struct.
///
/// Model hyper-parameters describe *what* to compute; RuntimeOptions
/// describes *how* the process executes it (pool width, kernel selection,
/// allocator recycling, observability). `ResuFormerConfig` embeds one as
/// `runtime`, and model constructors apply it via
/// `core::ApplyRuntimeOptions`, so a single struct flows from config files,
/// env vars or CLI flags down to the thread pool, arena, metrics registry
/// and tracer.
///
/// Environment overrides are resolved in exactly one place —
/// `RuntimeOptions::FromEnv()` — instead of scattered getenv calls:
///
///   RESUFORMER_THREADS          int    worker threads (>=1; 0 = auto)
///   RESUFORMER_FUSED_ATTENTION  0/1    fused vs composed attention path
///   RESUFORMER_TENSOR_ARENA     0/1    tensor-storage recycling
///   RESUFORMER_USE_PLAN         0/1    static inference-plan replay
///   RESUFORMER_USE_INT8         0/1    int8 GEMMs inside plan replay
///   RESUFORMER_SAVE_RFP3        0/1    save mmap-able RFP3 checkpoints
///   RESUFORMER_METRICS          0/1    timed metrics (histograms/timers)
///   RESUFORMER_TRACE            0/1    scoped-span tracing
///   RESUFORMER_TRACE_CAPACITY   int    per-thread span ring capacity
struct RuntimeOptions {
  // Worker threads for the tensor kernels (GEMM, softmax, layernorm, ...).
  // 0 = the RESUFORMER_THREADS env var when set, else hardware concurrency;
  // 1 = exact legacy serial behavior. Results are deterministic for any
  // fixed value.
  int threads = 0;

  // Fused multi-head attention kernel (ops::FusedMultiHeadAttention). The
  // fused forward is bit-identical to the composed reference at any thread
  // count; gradients agree to float rounding. false selects the composed
  // per-head op chain (the equivalence oracle used by the tests).
  bool use_fused_attention = true;

  // Recycle tensor storage through the global TensorArena free-list instead
  // of hitting the allocator on every op.
  bool use_tensor_arena = true;

  // Route ResuFormerPipeline parses through the static inference-plan cache
  // (trace once per sequence-length bucket, replay per document; see
  // core/inference_plan.h). Output is identical to the dynamic path — any
  // unplannable document falls back automatically. Default off.
  bool use_inference_plan = false;

  // Quantize plan GEMMs with constant weights (Linear layers, attention
  // projections, LSTM gates) to per-tensor symmetric int8 with int32
  // accumulation: weights are quantized once at plan-build time,
  // activations dynamically per replay (see tensor/quant.h). Implies plan
  // routing in the pipeline even when use_inference_plan is off; documents
  // the plan cannot cover still fall back to the dynamic fp32 path. Output
  // is NOT bit-identical to fp32 — the tier-1 accuracy gate bounds the
  // block-accuracy / NER-F1 deltas — but is deterministic at any thread
  // count. Default off.
  bool use_int8 = false;

  // Write checkpoints in the mmap-able RFP3 layout (64-byte-aligned raw
  // payloads; see nn/serialize.h) instead of RFP2. Loading auto-detects
  // the format, so this only affects Save. Default off.
  bool save_rfp3 = false;

  // Enables the *timed* metrics (latency histograms, thread-pool queue-wait
  // sampling). Structural counters (arena hits, documents parsed, GEMM
  // calls) are always live; this knob only gates clock reads.
  bool enable_metrics = false;

  // Enables scoped-span tracing (TRACE_SPAN). Off, every span site costs
  // one relaxed atomic load; on, spans land in per-thread ring buffers
  // exportable as Chrome trace JSON.
  bool enable_tracing = false;

  // Per-thread span ring capacity (most recent spans are kept).
  int trace_buffer_capacity = 8192;

  /// Defaults overridden by the RESUFORMER_* environment variables above.
  [[nodiscard]] static RuntimeOptions FromEnv();
};

namespace envparse {

/// Strict base-10 parse of the environment variable `name`. Returns
/// `fallback` when the variable is unset, empty, not a full integer
/// (trailing garbage rejected), overflows long/int, or falls outside
/// [min_value, max_value]. Never aborts: a malformed environment degrades
/// to defaults. Shared by RuntimeOptions::FromEnv and DefaultThreadCount so
/// RESUFORMER_THREADS parses identically everywhere.
int IntFromEnv(const char* name, int fallback, int min_value, int max_value);

}  // namespace envparse

}  // namespace resuformer

#endif  // RESUFORMER_COMMON_RUNTIME_OPTIONS_H_
