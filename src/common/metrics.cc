#include "common/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"

namespace resuformer {
namespace metrics {

namespace {

/// Bucket index for a sample: 0 for v <= 0, else 1 + floor(log2(v)),
/// clamped to the top bucket.
int BucketIndex(int64_t v) {
  if (v <= 0) return 0;
  int b = 1;
  while (v > 1 && b < Histogram::kNumBuckets - 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

/// Shared percentile kernel over a full bucket-count array (used by both
/// Histogram::ApproxPercentile and RollingHistogram::Window). The total is
/// summed from the buckets themselves so the target rank is always
/// reachable, even when a concurrent Record has bumped count_ and a bucket
/// at different instants. Implements the boundary contract documented on
/// Histogram::ApproxPercentile.
int64_t PercentileFromBucketCounts(const int64_t* buckets, double q) {
  int64_t total = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) total += buckets[b];
  if (total <= 0) return 0;
  // NaN fails both comparisons below, and feeding it onward would make the
  // ceil-cast undefined — fold it into the q>=1 "coarse maximum" case.
  if (std::isnan(q) || q > 1.0) q = 1.0;
  if (q < 0.0) q = 0.0;
  // Ceil so q=1.0 needs every sample and q=0.0 still needs the first one.
  const int64_t needed = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(total))));
  int64_t seen = 0;
  int last_nonempty = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    if (buckets[b] <= 0) continue;
    seen += buckets[b];
    last_nonempty = b;
    if (seen >= needed) return Histogram::BucketUpperBound(b);
  }
  return Histogram::BucketUpperBound(last_nonempty);
}

void AppendJsonKey(std::string* out, const std::string& name) {
  AppendJsonQuoted(out, name);
  out->append(": ");
}

/// Prometheus metric names allow only [a-zA-Z0-9_:] (and must not start
/// with a digit — the "resuformer_" prefix guarantees that). Our dotted
/// lowercase names map dots to underscores; anything else hostile maps to
/// '_' as well.
std::string PrometheusName(const std::string& name) {
  std::string out = "resuformer_";
  for (char c : name) {
    const bool ok =
        std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// "# HELP" line escaping per the text exposition format 0.0.4: backslash
/// and newline only.
std::string PrometheusHelpEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendPrometheusHeader(std::string* out, const std::string& prom_name,
                            const char* type, const std::string& original) {
  out->append("# HELP " + prom_name + " resuformer metric " +
              PrometheusHelpEscape(original) + "\n");
  out->append("# TYPE " + prom_name + " " + type + "\n");
}

}  // namespace

RollingHistogram::RollingHistogram(int num_epochs, int64_t epoch_ns)
    : num_epochs_(num_epochs), epoch_ns_(epoch_ns) {
  RF_CHECK(num_epochs_ >= 2) << "RollingHistogram needs >= 2 epochs";
  RF_CHECK(epoch_ns_ > 0) << "RollingHistogram needs a positive epoch";
  epochs_.reserve(static_cast<size_t>(num_epochs_));
  for (int i = 0; i < num_epochs_; ++i) {
    epochs_.push_back(std::make_unique<Epoch>());
  }
}

void RollingHistogram::Record(int64_t value, int64_t now_ns) {
  const int64_t seq = now_ns / epoch_ns_;
  Epoch& e = *epochs_[static_cast<size_t>(seq % num_epochs_)];
  // Relaxed load/CAS: the sequence number is a statistical epoch tag, not a
  // publication point. The CAS winner resets the slot for the new epoch; a
  // loser whose sample lands just before that Reset loses the sample, which
  // is the documented (and statistically irrelevant) rotation race.
  int64_t cur = e.seq.load(std::memory_order_relaxed);
  while (cur < seq) {
    if (e.seq.compare_exchange_weak(cur, seq, std::memory_order_relaxed)) {
      e.hist.Reset();
      break;
    }
  }
  e.hist.Record(value);
}

RollingHistogram::WindowSnapshot RollingHistogram::Window(int64_t now_ns) const {
  const int64_t cur_seq = now_ns / epoch_ns_;
  const int64_t min_seq = cur_seq - num_epochs_ + 1;
  int64_t buckets[Histogram::kNumBuckets] = {};
  WindowSnapshot out;
  for (const auto& e : epochs_) {
    // Relaxed: pairs with the tag updates in Record (see above).
    const int64_t seq = e->seq.load(std::memory_order_relaxed);
    if (seq < min_seq || seq > cur_seq) continue;
    out.sum += e->hist.sum();
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      buckets[b] += e->hist.bucket_count(b);
    }
  }
  for (int b = 0; b < Histogram::kNumBuckets; ++b) out.count += buckets[b];
  if (out.count > 0) {
    out.p50 = PercentileFromBucketCounts(buckets, 0.50);
    out.p99 = PercentileFromBucketCounts(buckets, 0.99);
  }
  return out;
}

void Histogram::Record(int64_t value) {
  // Relaxed everywhere: each field is an independent statistical tally, no
  // other memory is published through it, and Snapshot() tolerates fields
  // from slightly different instants (count may briefly disagree with sum).
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Relaxed CAS loop: min/max only ever ratchet, so a stale `seen` just
  // retries; ordering against other fields is irrelevant (see above).
  int64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  // Relaxed for the same ratcheting-CAS reason as min_ above.
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::BucketUpperBound(int b) {
  if (b <= 0) return 0;
  return (int64_t{1} << b) - 1;
}

int64_t Histogram::ApproxPercentile(double q) const {
  int64_t buckets[kNumBuckets];
  for (int b = 0; b < kNumBuckets; ++b) buckets[b] = bucket_count(b);
  return PercentileFromBucketCounts(buckets, q);
}

void Histogram::Reset() {
  // Relaxed: Reset is called from quiescent points (tests, bench setup);
  // samples racing a reset may land on either side, which is acceptable for
  // statistical instruments and needs no ordering.
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);  // relaxed: see above
  max_.store(INT64_MIN, std::memory_order_relaxed);  // relaxed: see above
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RF_CHECK(gauges_.find(name) == gauges_.end() &&
           histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as another kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RF_CHECK(counters_.find(name) == counters_.end() &&
           histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as another kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RF_CHECK(counters_.find(name) == counters_.end() &&
           gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered as another kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    h.count = hist->count();
    h.sum = hist->sum();
    h.min = h.count > 0 ? hist->min() : 0;
    h.max = h.count > 0 ? hist->max() : 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const int64_t c = hist->bucket_count(b);
      if (c > 0) h.buckets.push_back({Histogram::BucketUpperBound(b), c});
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::ResetCountersAndHistograms() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonKey(&out, counters[i].name);
    out += std::to_string(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonKey(&out, gauges[i].name);
    out += std::to_string(gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonKey(&out, h.name);
    out += "{\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"min\": " + std::to_string(h.min) +
           ", \"max\": " + std::to_string(h.max) + ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "{\"le\": " + std::to_string(h.buckets[b].upper_bound) +
             ", \"count\": " + std::to_string(h.buckets[b].count) + "}";
    }
    out += "]}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  char line[160];
  for (const CounterValue& c : counters) {
    const std::string name = PrometheusName(c.name);
    AppendPrometheusHeader(&out, name, "counter", c.name);
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeValue& g : gauges) {
    const std::string name = PrometheusName(g.name);
    AppendPrometheusHeader(&out, name, "gauge", g.name);
    out += name + " " + std::to_string(g.value) + "\n";
  }
  for (const HistogramValue& h : histograms) {
    const std::string name = PrometheusName(h.name);
    AppendPrometheusHeader(&out, name, "histogram", h.name);
    // Prometheus buckets are cumulative; ours are per-bucket counts.
    int64_t cumulative = 0;
    for (const HistogramValue::Bucket& b : h.buckets) {
      cumulative += b.count;
      std::snprintf(line, sizeof(line), "%s_bucket{le=\"%lld\"} %lld\n",
                    name.c_str(), static_cast<long long>(b.upper_bound),
                    static_cast<long long>(cumulative));
      out += line;
    }
    // +Inf must dominate every bucket; h.count can lag the bucket sum by a
    // racing sample, so take the max.
    const int64_t total = std::max(cumulative, h.count);
    std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %lld\n",
                  name.c_str(), static_cast<long long>(total));
    out += line;
    out += name + "_sum " + std::to_string(h.sum) + "\n";
    out += name + "_count " + std::to_string(total) + "\n";
  }
  return out;
}

}  // namespace metrics
}  // namespace resuformer
