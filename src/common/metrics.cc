#include "common/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace resuformer {
namespace metrics {

namespace {

/// Bucket index for a sample: 0 for v <= 0, else 1 + floor(log2(v)),
/// clamped to the top bucket.
int BucketIndex(int64_t v) {
  if (v <= 0) return 0;
  int b = 1;
  while (v > 1 && b < Histogram::kNumBuckets - 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

void AppendJsonKey(std::string* out, const std::string& name) {
  AppendJsonQuoted(out, name);
  out->append(": ");
}

}  // namespace

void Histogram::Record(int64_t value) {
  // Relaxed everywhere: each field is an independent statistical tally, no
  // other memory is published through it, and Snapshot() tolerates fields
  // from slightly different instants (count may briefly disagree with sum).
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Relaxed CAS loop: min/max only ever ratchet, so a stale `seen` just
  // retries; ordering against other fields is irrelevant (see above).
  int64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  // Relaxed for the same ratcheting-CAS reason as min_ above.
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::BucketUpperBound(int b) {
  if (b <= 0) return 0;
  return (int64_t{1} << b) - 1;
}

int64_t Histogram::ApproxPercentile(double q) const {
  const int64_t total = count();
  if (total <= 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Ceil so q=1.0 needs every sample and q=0.0 still needs the first one.
  const int64_t needed =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * total)));
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += bucket_count(b);
    if (seen >= needed) return BucketUpperBound(b);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

void Histogram::Reset() {
  // Relaxed: Reset is called from quiescent points (tests, bench setup);
  // samples racing a reset may land on either side, which is acceptable for
  // statistical instruments and needs no ordering.
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);  // relaxed: see above
  max_.store(INT64_MIN, std::memory_order_relaxed);  // relaxed: see above
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RF_CHECK(gauges_.find(name) == gauges_.end() &&
           histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as another kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RF_CHECK(counters_.find(name) == counters_.end() &&
           histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as another kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RF_CHECK(counters_.find(name) == counters_.end() &&
           gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered as another kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    h.count = hist->count();
    h.sum = hist->sum();
    h.min = h.count > 0 ? hist->min() : 0;
    h.max = h.count > 0 ? hist->max() : 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const int64_t c = hist->bucket_count(b);
      if (c > 0) h.buckets.push_back({Histogram::BucketUpperBound(b), c});
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::ResetCountersAndHistograms() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonKey(&out, counters[i].name);
    out += std::to_string(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonKey(&out, gauges[i].name);
    out += std::to_string(gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonKey(&out, h.name);
    out += "{\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"min\": " + std::to_string(h.min) +
           ", \"max\": " + std::to_string(h.max) + ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "{\"le\": " + std::to_string(h.buckets[b].upper_bound) +
             ", \"count\": " + std::to_string(h.buckets[b].count) + "}";
    }
    out += "]}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

}  // namespace metrics
}  // namespace resuformer
