#ifndef RESUFORMER_COMMON_TRACE_H_
#define RESUFORMER_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace resuformer {
namespace trace {

/// \brief Scoped-span tracer with per-thread ring buffers.
///
/// Usage: drop `TRACE_SPAN("gemm.nn");` at the top of a scope. When tracing
/// is enabled the span records {name, thread, start, duration} into the
/// calling thread's ring buffer on scope exit; the buffers are exportable as
/// Chrome trace-event JSON (load in chrome://tracing or https://ui.perfetto.dev).
///
/// Cost model:
///  * Disabled (the default), a span is one relaxed atomic load and a
///    branch — no clock read, no buffer touch, nothing captured. This is
///    the state benchmarks and production-throughput paths run in.
///  * Enabled, a span is two steady_clock reads plus an uncontended
///    per-thread mutex'd ring write (the mutex exists so export can run
///    concurrently with recording; it is never contended between spans).
///
/// Ring semantics: each thread keeps the most recent `buffer_capacity`
/// spans; older spans are overwritten and tallied in dropped(). Buffers are
/// bounded and reused, so tracing an arbitrarily long run cannot exhaust
/// memory.
///
/// Span names must be string literals (or otherwise outlive the recorder):
/// records store the pointer, not a copy — that keeps the hot path
/// allocation-free.

struct SpanRecord {
  const char* name = nullptr;
  int64_t start_ns = 0;  // relative to the process trace epoch
  int64_t dur_ns = 0;
  int tid = 0;  // sequential trace thread id (not the OS id)
  /// Serving request id the span belongs to (0 = none). Exported as a
  /// Chrome-trace "args" annotation so slow-trace exemplars correlate wire
  /// frames with pipeline spans.
  int64_t request_id = 0;
};

/// Nanoseconds since the process trace epoch (steady clock; first call
/// pins the epoch).
int64_t NowNs();

class TraceRecorder {
 public:
  /// Process-wide recorder. Intentionally leaked (threads may record
  /// during static teardown).
  static TraceRecorder& Global();

  void SetEnabled(bool enabled) {
    // Relaxed: the tracing gate is advisory — a span that reads the stale
    // value is recorded (or skipped) once more, with no integrity impact;
    // span data itself is published under the per-thread buffer mutex.
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  static bool Enabled() {
    // Relaxed: pairs with SetEnabled above.
    return Global().enabled_.load(std::memory_order_relaxed);
  }

  /// Per-thread ring capacity in spans (default 8192, minimum 16). Applies
  /// to every existing and future thread buffer; shrinking drops the oldest
  /// spans. No-op when unchanged.
  void SetBufferCapacity(int spans);
  int buffer_capacity() const;

  /// Appends one finished span to the calling thread's ring buffer.
  /// Normally called by ~TraceSpan, not directly.
  void Record(const char* name, int64_t start_ns, int64_t dur_ns,
              int64_t request_id = 0);

  /// All retained spans across threads, ordered by start time.
  std::vector<SpanRecord> Collect() const;

  /// Retained spans overlapping [start_ns, end_ns] (trace-epoch
  /// nanoseconds), same ordering as Collect(). Used by the serve-path
  /// slow-trace capture to cut one request's window out of the ring.
  std::vector<SpanRecord> CollectWindow(int64_t start_ns, int64_t end_ns) const;

  /// Spans overwritten by ring wraparound since the last Reset().
  int64_t dropped() const;

  /// Chrome trace-event JSON ("X" complete events, ts/dur in µs).
  std::string ToChromeJson() const;
  [[nodiscard]] Status WriteChromeJson(const std::string& path) const;

  /// Discards every retained span and the dropped tally. Thread buffers
  /// (and their tids) persist.
  void Reset();

 private:
  struct ThreadBuffer;

  TraceRecorder() = default;
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards buffers_ and capacity_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  int capacity_ = 8192;
};

/// RAII span (see TRACE_SPAN). Captures the start time if tracing was
/// enabled at construction; records on destruction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : TraceSpan(name, 0) {}
  /// Span annotated with a serving request id (see SpanRecord::request_id).
  TraceSpan(const char* name, int64_t request_id) {
    if (TraceRecorder::Enabled()) {
      name_ = name;
      request_id_ = request_id;
      start_ns_ = NowNs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      TraceRecorder::Global().Record(name_, start_ns_, NowNs() - start_ns_,
                                     request_id_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  int64_t request_id_ = 0;
};

/// Chrome trace-event JSON for an explicit span list ("X" complete events,
/// ts/dur in µs, request ids as args). TraceRecorder::ToChromeJson() is
/// ChromeTraceJson(Collect()).
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);
/// Writes ChromeTraceJson(spans) to `path` (IoError on failure).
[[nodiscard]] Status WriteChromeTraceJson(const std::string& path,
                                          const std::vector<SpanRecord>& spans);

}  // namespace trace
}  // namespace resuformer

#define RF_TRACE_CONCAT_IMPL(a, b) a##b
#define RF_TRACE_CONCAT(a, b) RF_TRACE_CONCAT_IMPL(a, b)

/// Traces the enclosing scope under `name` (a string literal).
#define TRACE_SPAN(name)                                      \
  ::resuformer::trace::TraceSpan RF_TRACE_CONCAT(rf_trace_span_, \
                                                 __LINE__)(name)

/// TRACE_SPAN annotated with a serving request id (0 = unannotated).
#define TRACE_SPAN_ID(name, request_id)                          \
  ::resuformer::trace::TraceSpan RF_TRACE_CONCAT(rf_trace_span_, \
                                                 __LINE__)(name, request_id)

#endif  // RESUFORMER_COMMON_TRACE_H_
