#include "common/table_printer.h"

#include <algorithm>

#include "common/logging.h"

namespace resuformer {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  RF_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  RF_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto format_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  auto separator = [&]() {
    std::string line = "+";
    for (size_t c = 0; c < header_.size(); ++c) {
      line += std::string(widths[c] + 2, '-') + "+";
    }
    return line + "\n";
  };

  std::string out = separator() + format_row(header_) + separator();
  for (const auto& row : rows_) {
    out += row.empty() ? separator() : format_row(row);
  }
  out += separator();
  return out;
}

}  // namespace resuformer
