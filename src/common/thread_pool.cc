#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/runtime_options.h"
#include "common/trace.h"

namespace resuformer {

namespace {
// True on threads owned by a pool; forces nested ParallelFor calls inline.
thread_local bool g_in_pool_worker = false;

// Fork-join observability (resolved once; see common/metrics.h): how often
// the pool actually forks, how long workers sit between publish and pickup
// (queue wait), and how long each chunk runs. Wait/run sampling needs the
// clock, so it is gated on MetricsRegistry::Enabled() via job_publish_ns_.
metrics::Counter* DispatchCounter() {
  static metrics::Counter* c = metrics::MetricsRegistry::Global().GetCounter(
      "threadpool.parallel_for.dispatches");
  return c;
}
metrics::Histogram* QueueWaitHistogram() {
  static metrics::Histogram* h =
      metrics::MetricsRegistry::Global().GetHistogram(
          "threadpool.queue_wait_us");
  return h;
}
metrics::Histogram* WorkerRunHistogram() {
  static metrics::Histogram* h =
      metrics::MetricsRegistry::Global().GetHistogram(
          "threadpool.worker_run_us");
  return h;
}
// Counts ParallelFor calls that arrived while another dispatch was in
// flight and therefore ran inline on the caller (see ParallelFor).
metrics::Counter* ContendedInlineCounter() {
  static metrics::Counter* c = metrics::MetricsRegistry::Global().GetCounter(
      "threadpool.parallel_for.contended_inline");
  return c;
}
}  // namespace

int DefaultThreadCount() {
  // Strict parse: malformed or out-of-range RESUFORMER_THREADS falls back
  // to hardware concurrency instead of riding std::atoi's overflow UB.
  const int n = envparse::IntFromEnv("RESUFORMER_THREADS", 0, 1, 256);
  if (n >= 1) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() { StartWorkers(DefaultThreadCount()); }

ThreadPool::~ThreadPool() { StopWorkers(); }

void ThreadPool::SetNumThreads(int n) {
  // Misuse detector, not a synchronization mechanism: resizing tears the
  // worker set down, so a resize racing a dispatch (or issued from inside a
  // ParallelFor body) is a programming error we fail fast on rather than
  // deadlock or corrupt the job slot. The check is best-effort — a dispatch
  // that starts after the check still races — but it catches the two
  // realistic misuse shapes: calling from a worker and calling while another
  // thread's ParallelFor is visibly in flight.
  RF_CHECK(!g_in_pool_worker)
      << "ThreadPool::SetNumThreads called from inside a ParallelFor body; "
         "configure the pool at startup or between dispatches";
  if (n <= 0) n = DefaultThreadCount();
  {
    std::lock_guard<std::mutex> lock(mu_);
    RF_CHECK(job_fn_ == nullptr)
        << "ThreadPool::SetNumThreads called while a ParallelFor dispatch is "
           "in flight on another thread";
    if (n == num_threads_) return;
  }
  StopWorkers();
  StartWorkers(n);
}

int ThreadPool::NumThreads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_threads_;
}

void ThreadPool::StartWorkers(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  num_threads_ = n;
  shutting_down_ = false;
  // The caller of ParallelFor acts as worker 0; spawn the other n-1.
  for (int i = 1; i < n; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

void ThreadPool::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void ThreadPool::Chunk(int64_t count, int workers, int w, int64_t* begin,
                       int64_t* end) {
  const int64_t base = count / workers;
  const int64_t rem = count % workers;
  *begin = w * base + std::min<int64_t>(w, rem);
  *end = *begin + base + (w < rem ? 1 : 0);
}

void ThreadPool::ParallelFor(int64_t count, const RangeFn& fn) {
  if (count <= 0) return;
  // Nested call from a pool worker: always inline (no nested parallelism).
  if (g_in_pool_worker) {
    fn(0, 0, count);
    return;
  }
  const int64_t publish_ns =
      metrics::MetricsRegistry::Enabled() ? trace::NowNs() : 0;
  int workers = 0;
  bool contended = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers = num_threads_;
    if (workers > count) workers = static_cast<int>(count);
    if (workers > 1 && job_fn_ == nullptr) {
      // Claim the pool: the job is published in the same critical section
      // that observed it idle, so two external threads can never co-publish.
      job_fn_ = &fn;
      job_count_ = count;
      job_workers_ = workers;
      job_publish_ns_ = publish_ns;
      pending_ = workers - 1;
      ++generation_;
    } else {
      contended = workers > 1;  // busy pool, not a serial one
      workers = 0;              // run inline below
    }
  }
  if (workers == 0) {
    // Serial pool, or another external thread's dispatch is in flight.
    // Degrade to inline execution on the caller instead of blocking (or
    // crashing, as earlier revisions did): the result is identical — the
    // body observes worker 0 over the full range, the same partitioning a
    // one-worker dispatch would use — and concurrent callers (e.g. two
    // request threads both inside ParseBatch) stay correct. The body is
    // still "inside a ParallelFor" for misuse-detection purposes, so mark
    // the thread pool-owned while it runs (also inlines nested calls).
    if (contended) ContendedInlineCounter()->Increment();
    g_in_pool_worker = true;
    fn(0, 0, count);
    g_in_pool_worker = false;
    return;
  }
  TRACE_SPAN("threadpool.parallel_for");
  DispatchCounter()->Increment();
  work_cv_.notify_all();
  int64_t begin = 0, end = 0;
  Chunk(count, workers, 0, &begin, &end);
  // The driving thread acts as worker 0: mark it pool-owned while it runs
  // its chunk so nested ParallelFor calls inside fn inline (as they do on
  // the resident workers) instead of re-entering the busy pool.
  g_in_pool_worker = true;
  {
    TRACE_SPAN("threadpool.worker_run");
    fn(0, begin, end);
  }
  if (publish_ns != 0) {
    WorkerRunHistogram()->Record((trace::NowNs() - publish_ns) / 1000);
  }
  g_in_pool_worker = false;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this]() { return pending_ == 0; });
  job_fn_ = nullptr;
}

void ThreadPool::WorkerLoop(int index) {
  g_in_pool_worker = true;
  uint64_t seen_generation = 0;
  for (;;) {
    const RangeFn* fn = nullptr;
    int64_t count = 0;
    int workers = 0;
    int64_t publish_ns = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&]() {
        return shutting_down_ || generation_ != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = generation_;
      fn = job_fn_;
      count = job_count_;
      workers = job_workers_;
      publish_ns = job_publish_ns_;
    }
    if (index < workers && fn != nullptr) {
      int64_t start_ns = 0;
      if (publish_ns != 0) {
        start_ns = trace::NowNs();
        QueueWaitHistogram()->Record((start_ns - publish_ns) / 1000);
      }
      int64_t begin = 0, end = 0;
      Chunk(count, workers, index, &begin, &end);
      {
        TRACE_SPAN("threadpool.worker_run");
        (*fn)(index, begin, end);
      }
      if (publish_ns != 0) {
        WorkerRunHistogram()->Record((trace::NowNs() - start_ns) / 1000);
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace resuformer
