#ifndef RESUFORMER_COMMON_RNG_H_
#define RESUFORMER_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace resuformer {

/// \brief Deterministic pseudo-random generator (xoshiro256**).
///
/// All stochastic components — parameter init, dropout, corpus sampling,
/// dynamic masking — draw from an explicitly seeded Rng so every experiment
/// is bit-reproducible. Not thread-safe; use one Rng per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal sample (Box-Muller).
  double Normal();

  /// Gaussian with the given mean/stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// A random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Samples k distinct indices from {0, ..., n-1} (k <= n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Picks an index with probability proportional to weights[i].
  int Categorical(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace resuformer

#endif  // RESUFORMER_COMMON_RNG_H_
