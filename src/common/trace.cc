#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

namespace resuformer {
namespace trace {

namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

/// One thread's ring. The owning thread writes under `mu`; Collect /
/// SetBufferCapacity lock the same mutex, so export can run while other
/// threads keep recording.
struct TraceRecorder::ThreadBuffer {
  ThreadBuffer(int capacity, int tid) : ring(capacity), tid(tid) {}

  std::mutex mu;
  std::vector<SpanRecord> ring;
  int64_t total = 0;    // retained-window position; ring slot = total % size
  int64_t dropped = 0;  // spans overwritten or discarded since Reset()
  int tid;
};

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        capacity_, static_cast<int>(buffers_.size())));
    buffer = buffers_.back().get();
  }
  return buffer;
}

void TraceRecorder::SetBufferCapacity(int spans) {
  spans = std::max(spans, 16);
  std::lock_guard<std::mutex> lock(mu_);
  if (spans == capacity_) return;
  capacity_ = spans;
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    // Keep the newest spans that fit the new capacity, oldest-first so the
    // ring restarts in a clean state.
    std::vector<SpanRecord> kept;
    const int64_t have =
        std::min<int64_t>(buffer->total, static_cast<int64_t>(buffer->ring.size()));
    const int64_t take = std::min<int64_t>(have, spans);
    for (int64_t i = buffer->total - take; i < buffer->total; ++i) {
      kept.push_back(buffer->ring[i % buffer->ring.size()]);
    }
    buffer->ring.assign(spans, SpanRecord{});
    for (int64_t i = 0; i < static_cast<int64_t>(kept.size()); ++i) {
      buffer->ring[i] = kept[i];
    }
    buffer->dropped += have - static_cast<int64_t>(kept.size());
    buffer->total = static_cast<int64_t>(kept.size());
  }
}

int TraceRecorder::buffer_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceRecorder::Record(const char* name, int64_t start_ns, int64_t dur_ns,
                           int64_t request_id) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->total >= static_cast<int64_t>(buffer->ring.size())) {
    ++buffer->dropped;  // this write overwrites the oldest retained span
  }
  buffer->ring[buffer->total % buffer->ring.size()] =
      SpanRecord{name, start_ns, dur_ns, buffer->tid, request_id};
  ++buffer->total;
}

std::vector<SpanRecord> TraceRecorder::Collect() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      const int64_t size = static_cast<int64_t>(buffer->ring.size());
      const int64_t have = std::min(buffer->total, size);
      for (int64_t i = buffer->total - have; i < buffer->total; ++i) {
        out.push_back(buffer->ring[i % size]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return out;
}

std::vector<SpanRecord> TraceRecorder::CollectWindow(int64_t start_ns,
                                                     int64_t end_ns) const {
  std::vector<SpanRecord> out = Collect();
  out.erase(std::remove_if(out.begin(), out.end(),
                           [start_ns, end_ns](const SpanRecord& s) {
                             // Keep spans overlapping the window: a span
                             // that started before it counts if it was
                             // still running when the window opened.
                             return s.start_ns + s.dur_ns < start_ns ||
                                    s.start_ns > end_ns;
                           }),
            out.end());
  return out;
}

int64_t TraceRecorder::dropped() const {
  int64_t dropped = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    dropped += buffer->dropped;
  }
  return dropped;
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  char buf[320];
  char args[64];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    args[0] = '\0';
    if (s.request_id != 0) {
      std::snprintf(args, sizeof(args), ", \"args\": {\"request_id\": %lld}",
                    static_cast<long long>(s.request_id));
    }
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"resuformer\", "
                  "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                  "\"pid\": 1, \"tid\": %d%s}",
                  i == 0 ? "" : ",", s.name, s.start_ns / 1000.0,
                  s.dur_ns / 1000.0, s.tid, args);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTraceJson(const std::string& path,
                            const std::vector<SpanRecord>& spans) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open trace output: " + path);
  file << ChromeTraceJson(spans);
  if (!file.good()) return Status::IoError("short write to " + path);
  return Status::OK();
}

std::string TraceRecorder::ToChromeJson() const {
  return ChromeTraceJson(Collect());
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  return WriteChromeTraceJson(path, Collect());
}

void TraceRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->total = 0;
    buffer->dropped = 0;
  }
}

}  // namespace trace
}  // namespace resuformer
