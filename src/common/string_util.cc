#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace resuformer {

std::vector<std::string> SplitString(std::string_view text,
                                     std::string_view delims) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || delims.find(text[i]) != std::string_view::npos) {
      if (i > start) pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StripAscii(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out(size > 0 ? static_cast<size_t>(size) : 0, '\0');
  if (size > 0) {
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool IsAsciiDigits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\b':
        out.append("\\b");
        break;
      case '\f':
        out.append("\\f");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void AppendJsonQuoted(std::string* out, std::string_view text) {
  out->push_back('"');
  out->append(JsonEscape(text));
  out->push_back('"');
}

}  // namespace resuformer
