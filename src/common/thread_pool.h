#ifndef RESUFORMER_COMMON_THREAD_POOL_H_
#define RESUFORMER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace resuformer {

/// Resolves the process-wide default worker count: the RESUFORMER_THREADS
/// environment variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (minimum 1).
int DefaultThreadCount();

/// \brief Persistent fork-join pool with static (fixed) partitioning.
///
/// ParallelFor splits an index range into one contiguous chunk per worker;
/// chunk boundaries depend only on (count, NumThreads()), never on runtime
/// scheduling, so results that accumulate per-chunk are deterministic for a
/// fixed thread count. There is no work stealing and no task queue: worker w
/// always executes chunk w, and the calling thread executes chunk 0.
///
/// With NumThreads() == 1 the body runs inline on the caller — byte-for-byte
/// the legacy serial behavior, with no synchronization cost.
///
/// Concurrent external callers are safe: the pool serves one dispatch at a
/// time, and a ParallelFor that arrives while another thread's dispatch is
/// in flight runs its body inline on the caller (worker 0, full range)
/// instead of blocking. The "threadpool.parallel_for.contended_inline"
/// counter tallies how often that happens.
///
/// SetNumThreads must not race with ParallelFor; callers configure the pool
/// at startup (or between steps), not from inside kernels. Misuse is
/// detected and RF_CHECK-fails: calling it from inside a ParallelFor body,
/// or while another thread's dispatch is visibly in flight, aborts with a
/// diagnostic instead of deadlocking.
class ThreadPool {
 public:
  /// Process-wide pool used by the tensor kernels. Sized on first use from
  /// DefaultThreadCount().
  static ThreadPool& Global();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Resizes the pool. `n <= 0` resolves to DefaultThreadCount(); `1` keeps
  /// no background workers (pure serial execution). RF_CHECK-fails when
  /// called from inside a ParallelFor body or while a dispatch is in flight
  /// (see class comment).
  void SetNumThreads(int n);
  int NumThreads() const;

  /// Body invoked per chunk: fn(worker, begin, end) over [begin, end).
  /// `worker` is in [0, NumThreads()) and identifies the chunk — use it to
  /// index per-worker accumulation buffers.
  using RangeFn = std::function<void(int worker, int64_t begin, int64_t end)>;

  /// Runs fn over [0, count) split into min(NumThreads(), count) contiguous
  /// chunks. Blocks until every chunk finished. Runs inline when the pool is
  /// serial, count <= 1, or when called from inside a pool worker (no nested
  /// parallelism).
  void ParallelFor(int64_t count, const RangeFn& fn);

 private:
  ThreadPool();

  void StartWorkers(int n);
  void StopWorkers();
  void WorkerLoop(int index);

  /// Chunk w of W over [0, count): sizes differ by at most one element.
  static void Chunk(int64_t count, int workers, int w, int64_t* begin,
                    int64_t* end);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  int num_threads_ = 1;

  // One in-flight job, published under mu_ and identified by generation_.
  const RangeFn* job_fn_ = nullptr;
  int64_t job_count_ = 0;
  int job_workers_ = 0;
  // Publish timestamp (trace::NowNs) of the in-flight job, or 0 when timed
  // metrics are disabled; workers subtract it to report queue-wait time.
  int64_t job_publish_ns_ = 0;
  uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutting_down_ = false;
};

}  // namespace resuformer

#endif  // RESUFORMER_COMMON_THREAD_POOL_H_
