#ifndef RESUFORMER_COMMON_STATUS_H_
#define RESUFORMER_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace resuformer {

/// Error categories used across the library (RocksDB/Arrow-style status
/// codes; the library reports failures through Status/Result instead of
/// throwing exceptions across its public API).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kIoError,
  // Serving-path codes (src/serve): a request missed its deadline, the
  // admission queue is full, or the server is draining and no longer
  // accepts work.
  kDeadlineExceeded,
  kResourceExhausted,
  kUnavailable,
};

/// \brief Lightweight success/failure result for operations without a value.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
///
/// The class itself is [[nodiscard]]: any function returning Status (or
/// Result, below) warns when a caller drops the return value, so a silently
/// ignored error cannot compile warning-clean. rf_lint additionally requires
/// the per-declaration annotation on such functions (belt and braces — the
/// class attribute covers by-value returns; the declaration attribute keeps
/// the contract visible in headers).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "InvalidArgument: bad shape".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief A value-or-Status holder (Arrow's Result<T> idiom).
///
/// Usage:
///   Result<Vocab> r = Vocab::Load(path);
///   if (!r.ok()) return r.status();
///   Vocab v = std::move(r).ValueOrDie();
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit conversions mirror Arrow: both values and error Statuses
  // construct a Result so `return value;` and `return status;` both work.
  Result(T value) : holder_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                           // NOLINT(runtime/explicit)
      : holder_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(holder_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(holder_);
  }

  const T& value() const& { return std::get<T>(holder_); }
  T& value() & { return std::get<T>(holder_); }
  T&& ValueOrDie() && { return std::move(std::get<T>(holder_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> holder_;
};

/// Propagates a non-OK Status from an expression (Arrow's macro idiom).
#define RF_RETURN_NOT_OK(expr)             \
  do {                                     \
    ::resuformer::Status _s = (expr);      \
    if (!_s.ok()) return _s;               \
  } while (false)

/// Explicitly consumes a Status at call sites where failure is tolerable
/// (e.g. best-model snapshots inside a training loop: a failed save means
/// the snapshot does not advance, not that the run must die). Logs the
/// status as a warning with `context` when non-OK. Using this instead of a
/// bare discarded call keeps the tolerance decision visible and satisfies
/// both the [[nodiscard]] attribute and rf_lint's discarded-status rule.
void WarnIfError(const Status& s, const char* context);

}  // namespace resuformer

#endif  // RESUFORMER_COMMON_STATUS_H_
