#ifndef RESUFORMER_TENSOR_AUTOGRAD_H_
#define RESUFORMER_TENSOR_AUTOGRAD_H_

#include <memory>
#include <vector>

namespace resuformer {

struct TensorImpl;

/// Runs reverse-mode autodiff from `root` (must be a scalar): seeds its
/// gradient with 1, topologically sorts the graph reachable through
/// parents edges, and calls each node's backward function in reverse order.
void RunBackward(const std::shared_ptr<TensorImpl>& root);

namespace autograd_internal {
/// Depth-first topological order (parents before children) of the graph
/// reachable from root. Exposed for tests.
std::vector<TensorImpl*> TopologicalOrder(TensorImpl* root);
}  // namespace autograd_internal

}  // namespace resuformer

#endif  // RESUFORMER_TENSOR_AUTOGRAD_H_
