#ifndef RESUFORMER_TENSOR_AUTOGRAD_H_
#define RESUFORMER_TENSOR_AUTOGRAD_H_

#include <memory>
#include <vector>

namespace resuformer {

struct TensorImpl;

/// Runs reverse-mode autodiff from `root` (must be a scalar): seeds its
/// gradient with 1, topologically sorts the graph reachable through
/// parents edges, and calls each node's backward function in reverse order.
void RunBackward(const std::shared_ptr<TensorImpl>& root);

namespace autograd_internal {
/// Depth-first topological order (parents before children) of the graph
/// reachable from root. Exposed for tests.
std::vector<TensorImpl*> TopologicalOrder(TensorImpl* root);

/// Debug-mode graph validator, run by RunBackward before executing any
/// backward function when RF_DCHECK is compiled in (Debug builds or
/// RESUFORMER_DCHECK=ON). `order` is the topological order of the graph
/// under `root`. RF_DCHECK-fails on:
///  * topological inconsistency — a parent positioned at or after its
///    child, which is exactly what a reference cycle produces;
///  * shape/storage disagreement — a node whose shape product no longer
///    matches its data size;
///  * a gradient buffer sized differently from its tensor's data (the
///    "gradient shape matches output shape" invariant);
///  * double backward — a node whose backward_fn already ran in an earlier
///    RunBackward; its closure may capture arena scratch that has since
///    been recycled, so running it again reads freed buffers.
/// Exposed for tests; a no-op when RF_DCHECK is compiled out.
void ValidateGraph(const TensorImpl* root,
                   const std::vector<TensorImpl*>& order);
}  // namespace autograd_internal

}  // namespace resuformer

#endif  // RESUFORMER_TENSOR_AUTOGRAD_H_
