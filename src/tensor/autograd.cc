#include "tensor/autograd.h"

#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "tensor/tensor.h"

namespace resuformer {

namespace autograd_internal {

std::vector<TensorImpl*> TopologicalOrder(TensorImpl* root) {
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  // Iterative DFS: graphs for long documents can be deep enough that the
  // recursive form risks stack overflow.
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root).second) stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (parent != nullptr && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
  return order;  // parents first, root last
}

void ValidateGraph(const TensorImpl* root,
                   const std::vector<TensorImpl*>& order) {
  if (!DcheckEnabled()) return;
  RF_DCHECK(root != nullptr);
  RF_DCHECK(!order.empty());
  RF_DCHECK(order.back() == root)
      << "topological order must end at the backward root";
  std::unordered_map<const TensorImpl*, size_t> position;
  position.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (size_t i = 0; i < order.size(); ++i) {
    const TensorImpl* node = order[i];
    RF_DCHECK(node != nullptr);
    RF_DCHECK(node->external_data != nullptr ||
              node->size() == static_cast<int64_t>(node->data.size()))
        << "autograd node shape product disagrees with its storage";
    RF_DCHECK(node->grad.empty() ||
              static_cast<int64_t>(node->grad.size()) == node->size())
        << "gradient buffer size " << node->grad.size()
        << " does not match tensor element count " << node->size();
    RF_DCHECK(!node->backward_consumed)
        << "double backward: this node's backward_fn already ran; its "
           "closure may capture scratch buffers that were recycled after "
           "the first pass";
    for (const auto& parent : node->parents) {
      if (parent == nullptr) continue;  // undefined optional input
      auto it = position.find(parent.get());
      RF_DCHECK(it != position.end())
          << "parent missing from the topological order";
      RF_DCHECK_LT(it->second, i)
          << "parent ordered at or after its child — the autograd graph "
             "contains a cycle";
    }
  }
}

}  // namespace autograd_internal

void RunBackward(const std::shared_ptr<TensorImpl>& root) {
  RF_CHECK(root != nullptr);
  RF_CHECK_EQ(root->size(), 1);
  root->EnsureGrad();
  root->grad[0] = 1.0f;

  std::vector<TensorImpl*> order =
      autograd_internal::TopologicalOrder(root.get());
  autograd_internal::ValidateGraph(root.get(), order);
  // Visit root first, then inputs: iterate the topological order in reverse.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) {
      node->backward_fn();
      // Feeds the double-backward detector above; only written when the
      // validator that reads it is compiled in.
      if (DcheckEnabled()) node->backward_consumed = true;
    }
  }
}

}  // namespace resuformer
