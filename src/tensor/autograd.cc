#include "tensor/autograd.h"

#include <unordered_set>

#include "common/logging.h"
#include "tensor/tensor.h"

namespace resuformer {

namespace autograd_internal {

std::vector<TensorImpl*> TopologicalOrder(TensorImpl* root) {
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  // Iterative DFS: graphs for long documents can be deep enough that the
  // recursive form risks stack overflow.
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root).second) stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (parent != nullptr && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
  return order;  // parents first, root last
}

}  // namespace autograd_internal

void RunBackward(const std::shared_ptr<TensorImpl>& root) {
  RF_CHECK(root != nullptr);
  RF_CHECK_EQ(root->size(), 1);
  root->EnsureGrad();
  root->grad[0] = 1.0f;

  std::vector<TensorImpl*> order =
      autograd_internal::TopologicalOrder(root.get());
  // Visit root first, then inputs: iterate the topological order in reverse.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) node->backward_fn();
  }
}

}  // namespace resuformer
