#ifndef RESUFORMER_TENSOR_QUANT_H_
#define RESUFORMER_TENSOR_QUANT_H_

#include <cstdint>
#include <vector>

namespace resuformer {
namespace quant {

// ---------------------------------------------------------------------------
// Per-tensor symmetric int8 quantization.
//
// A float tensor x maps to int8 q with one scale s = max|x| / 127:
//
//   q[i] = clamp(round(x[i] / s), -127, 127)      (saturating, half away
//   x[i] ~ q[i] * s                                from zero)
//
// The representable range is symmetric (-127..127; -128 is never produced)
// so that q and -q are exact negations and a GEMM over two quantized
// operands needs only one combined scale sa*sw on the int32 accumulator.
//
// Weights are quantized ONCE at plan-build time (plan::Recorder::Finish)
// and cached in the plan as `QuantizedTensor`s; activations are quantized
// dynamically per replay inside LinearI8Forward. The int8 GEMM kernels
// themselves live in tensor/kernels.h (GemmNTI8 / GemmNNI8 / GemmTNI8).
//
// Error bound: |x - Dequantize(Quantize(x))| <= s/2 element-wise whenever
// |x| <= max|x| (always true for the tensor that defined s). The property
// test in tests/quant_test.cc pins this bound.
//
// This file (with nn/serialize.cc) is one of the two TUs allowed to
// reinterpret_cast raw payload bytes — rf_lint rule 11 flags such casts
// anywhere else.
// ---------------------------------------------------------------------------

/// Quantization scale for n values: max|x| / 127. Returns 0.0f for an
/// all-zero (or empty) input, which callers treat as "output is exactly 0".
float ComputeScale(const float* x, int64_t n);

/// q[i] = clamp(round(x[i] / scale), -127, 127). scale must be > 0.
void Quantize(const float* x, int64_t n, float scale, int8_t* out);

/// x[i] = q[i] * scale.
void Dequantize(const int8_t* q, int64_t n, float scale, float* out);

/// An int8 weight matrix plus its per-tensor scale. `data` is row-major
/// [rows, cols]; for plan use, rows = output features and cols = reduction
/// dim, i.e. the NT ("B transposed") layout whose per-output-row dot
/// products are contiguous.
struct QuantizedTensor {
  std::vector<int8_t> data;
  int rows = 0;
  int cols = 0;
  float scale = 0.0f;
};

/// Quantizes a row-major [k, n] weight into its [n, k] transpose. This is
/// how a Linear weight (x * W, W = [in, out]) becomes an NT-form operand:
/// one quantize at plan build buys contiguous dot products at every replay.
QuantizedTensor QuantizeTransposed(const float* w, int k, int n);

/// Quantizes a row-major [rows, cols] matrix as-is (already NT layout).
QuantizedTensor QuantizeRows(const float* w, int rows, int cols);

/// Workspace floats LinearI8Forward needs for an [m,k] x [k,n] product:
/// an int32 accumulator block [m,n] plus the quantized activations [m,k]
/// packed 4-per-float.
int64_t LinearI8ScratchFloats(int m, int k, int n);

/// Largest reduction dim k for which the int32 accumulator cannot overflow
/// (127 * 127 * k < 2^31). Recorder::Finish refuses to rewrite wider GEMMs.
inline constexpr int kMaxI8ReduceDim = 130000;

/// C[m,n] = A[m,k] * W^T for a plan-cached quantized weight W = [n, k]:
/// computes the dynamic activation scale, quantizes A into `scratch`, runs
/// the int8 NT GEMM with int32 accumulation, and dequantizes into C
/// (overwrite, not accumulate). `scratch` must hold
/// LinearI8ScratchFloats(m, k, n) floats. Parallel partitioning follows the
/// fp32 GEMM contract (row partitions, deterministic at any thread count —
/// integer accumulation is exact, so results are identical regardless of
/// the partition).
void LinearI8Forward(const float* a, const QuantizedTensor& w, float* c,
                     int m, int k, int n, float* scratch);

}  // namespace quant
}  // namespace resuformer

#endif  // RESUFORMER_TENSOR_QUANT_H_
