#include "tensor/ops.h"

#include <cmath>

#include "common/logging.h"

namespace resuformer {
namespace ops {

namespace {

using ImplPtr = std::shared_ptr<TensorImpl>;

/// Creates the result node of an op: allocates storage, records parents, and
/// decides whether the node participates in autograd.
Tensor MakeNode(std::vector<int> shape, std::vector<ImplPtr> parents) {
  Tensor out = Tensor::Zeros(std::move(shape));
  bool needs_grad = false;
  if (NoGradGuard::GradEnabled()) {
    for (const auto& p : parents) {
      if (p && p->requires_grad) {
        needs_grad = true;
        break;
      }
    }
  }
  if (needs_grad) {
    out.impl()->requires_grad = true;
    out.impl()->parents = std::move(parents);
  }
  return out;
}

/// Installs the backward closure only when the node tracks gradients.
template <typename Fn>
void SetBackward(Tensor* out, Fn fn) {
  if (out->impl()->requires_grad) out->impl()->backward_fn = std::move(fn);
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  RF_CHECK_EQ(a.rank(), 2);
  RF_CHECK_EQ(b.rank(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  RF_CHECK_EQ(k, b.dim(0));
  Tensor out = MakeNode({m, n}, {a.impl(), b.impl()});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  // ikj loop order: streams pb/pc rows for cache friendliness.
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl(), bi = b.impl();
  SetBackward(&out, [self, ai, bi, m, k, n]() {
    const float* dc = self->grad.data();
    if (ai->requires_grad) {
      ai->EnsureGrad();
      float* da = ai->grad.data();
      const float* pb = bi->data.data();
      // dA = dC * B^T
      for (int i = 0; i < m; ++i) {
        for (int kk = 0; kk < k; ++kk) {
          const float* brow = pb + kk * n;
          const float* dcrow = dc + i * n;
          float acc = 0.0f;
          for (int j = 0; j < n; ++j) acc += dcrow[j] * brow[j];
          da[i * k + kk] += acc;
        }
      }
    }
    if (bi->requires_grad) {
      bi->EnsureGrad();
      float* db = bi->grad.data();
      const float* pa = ai->data.data();
      // dB = A^T * dC
      for (int i = 0; i < m; ++i) {
        const float* dcrow = dc + i * n;
        for (int kk = 0; kk < k; ++kk) {
          const float av = pa[i * k + kk];
          if (av == 0.0f) continue;
          float* dbrow = db + kk * n;
          for (int j = 0; j < n; ++j) dbrow[j] += av * dcrow[j];
        }
      }
    }
  });
  return out;
}

Tensor Transpose(const Tensor& a) {
  RF_CHECK_EQ(a.rank(), 2);
  const int m = a.dim(0), n = a.dim(1);
  Tensor out = MakeNode({n, m}, {a.impl()});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, m, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        ai->grad[i * n + j] += self->grad[j * m + i];
      }
    }
  });
  return out;
}

namespace {
Tensor AddSubImpl(const Tensor& a, const Tensor& b, float sign) {
  const bool broadcast = b.rank() == 1 && a.rank() == 2 &&
                         b.size() == a.cols() && !SameShape(a, b);
  if (!broadcast) {
    RF_CHECK(SameShape(a, b)) << a.ShapeString() << " vs " << b.ShapeString();
  }
  Tensor out = MakeNode(a.shape(), {a.impl(), b.impl()});
  const int64_t n = a.size();
  const int cols = a.cols();
  for (int64_t i = 0; i < n; ++i) {
    const float bv = broadcast ? b.data()[i % cols] : b.data()[i];
    out.data()[i] = a.data()[i] + sign * bv;
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl(), bi = b.impl();
  SetBackward(&out, [self, ai, bi, n, cols, broadcast, sign]() {
    if (ai->requires_grad) {
      ai->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) ai->grad[i] += self->grad[i];
    }
    if (bi->requires_grad) {
      bi->EnsureGrad();
      if (broadcast) {
        for (int64_t i = 0; i < n; ++i) {
          bi->grad[i % cols] += sign * self->grad[i];
        }
      } else {
        for (int64_t i = 0; i < n; ++i) bi->grad[i] += sign * self->grad[i];
      }
    }
  });
  return out;
}
}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) { return AddSubImpl(a, b, 1.0f); }
Tensor Sub(const Tensor& a, const Tensor& b) { return AddSubImpl(a, b, -1.0f); }

Tensor Mul(const Tensor& a, const Tensor& b) {
  RF_CHECK(SameShape(a, b));
  Tensor out = MakeNode(a.shape(), {a.impl(), b.impl()});
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] * b.data()[i];
  TensorImpl* self = out.impl().get();
  auto ai = a.impl(), bi = b.impl();
  SetBackward(&out, [self, ai, bi, n]() {
    if (ai->requires_grad) {
      ai->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        ai->grad[i] += self->grad[i] * bi->data[i];
      }
    }
    if (bi->requires_grad) {
      bi->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        bi->grad[i] += self->grad[i] * ai->data[i];
      }
    }
  });
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = MakeNode(a.shape(), {a.impl()});
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] * s;
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, n, s]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t i = 0; i < n; ++i) ai->grad[i] += self->grad[i] * s;
  });
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = MakeNode(a.shape(), {a.impl()});
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] + s;
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t i = 0; i < n; ++i) ai->grad[i] += self->grad[i];
  });
  return out;
}

namespace {
/// Generic elementwise op: forward(x) and dydx computed from (x, y).
template <typename FwdFn, typename BwdFn>
Tensor Elementwise(const Tensor& a, FwdFn fwd, BwdFn dydx) {
  Tensor out = MakeNode(a.shape(), {a.impl()});
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) out.data()[i] = fwd(a.data()[i]);
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, n, dydx]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t i = 0; i < n; ++i) {
      ai->grad[i] += self->grad[i] * dydx(ai->data[i], self->data[i]);
    }
  });
  return out;
}
}  // namespace

Tensor Relu(const Tensor& a) {
  return Elementwise(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Tanh(const Tensor& a) {
  return Elementwise(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return Elementwise(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Gelu(const Tensor& a) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  return Elementwise(
      a,
      [](float x) {
        const float u = kC * (x + 0.044715f * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(u));
      },
      [](float x, float) {
        const float u = kC * (x + 0.044715f * x * x * x);
        const float t = std::tanh(u);
        const float du = kC * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
      });
}

Tensor Softmax(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out = MakeNode(a.shape(), {a.impl()});
  for (int i = 0; i < m; ++i) {
    const float* row = a.data() + static_cast<int64_t>(i) * n;
    float* orow = out.data() + static_cast<int64_t>(i) * n;
    float mx = row[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float total = 0.0f;
    for (int j = 0; j < n; ++j) {
      orow[j] = std::exp(row[j] - mx);
      total += orow[j];
    }
    for (int j = 0; j < n; ++j) orow[j] /= total;
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, m, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < m; ++i) {
      const float* y = self->data.data() + static_cast<int64_t>(i) * n;
      const float* dy = self->grad.data() + static_cast<int64_t>(i) * n;
      float* dx = ai->grad.data() + static_cast<int64_t>(i) * n;
      float dot = 0.0f;
      for (int j = 0; j < n; ++j) dot += dy[j] * y[j];
      for (int j = 0; j < n; ++j) dx[j] += (dy[j] - dot) * y[j];
    }
  });
  return out;
}

Tensor LogSoftmax(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out = MakeNode(a.shape(), {a.impl()});
  for (int i = 0; i < m; ++i) {
    const float* row = a.data() + static_cast<int64_t>(i) * n;
    float* orow = out.data() + static_cast<int64_t>(i) * n;
    float mx = row[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float total = 0.0f;
    for (int j = 0; j < n; ++j) total += std::exp(row[j] - mx);
    const float lse = mx + std::log(total);
    for (int j = 0; j < n; ++j) orow[j] = row[j] - lse;
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, m, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < m; ++i) {
      const float* y = self->data.data() + static_cast<int64_t>(i) * n;
      const float* dy = self->grad.data() + static_cast<int64_t>(i) * n;
      float* dx = ai->grad.data() + static_cast<int64_t>(i) * n;
      float total = 0.0f;
      for (int j = 0; j < n; ++j) total += dy[j];
      for (int j = 0; j < n; ++j) dx[j] += dy[j] - std::exp(y[j]) * total;
    }
  });
  return out;
}

Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets,
                    int ignore_index) {
  const int m = logits.rows(), n = logits.cols();
  RF_CHECK_EQ(static_cast<int>(targets.size()), m);
  // Fused: compute softmax rows once, reuse them in backward.
  std::vector<float> probs(static_cast<size_t>(m) * n);
  int active = 0;
  double loss = 0.0;
  for (int i = 0; i < m; ++i) {
    const float* row = logits.data() + static_cast<int64_t>(i) * n;
    float* prow = probs.data() + static_cast<int64_t>(i) * n;
    float mx = row[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float total = 0.0f;
    for (int j = 0; j < n; ++j) {
      prow[j] = std::exp(row[j] - mx);
      total += prow[j];
    }
    for (int j = 0; j < n; ++j) prow[j] /= total;
    if (targets[i] == ignore_index) continue;
    RF_CHECK_GE(targets[i], 0);
    RF_CHECK_LT(targets[i], n);
    loss += -std::log(std::max(prow[targets[i]], 1e-12f));
    ++active;
  }
  Tensor out = MakeNode({1}, {logits.impl()});
  out.data()[0] = active > 0 ? static_cast<float>(loss / active) : 0.0f;
  TensorImpl* self = out.impl().get();
  auto li = logits.impl();
  SetBackward(&out, [self, li, m, n, targets, ignore_index, active,
                     probs = std::move(probs)]() {
    if (!li->requires_grad || active == 0) return;
    li->EnsureGrad();
    const float g = self->grad[0] / active;
    for (int i = 0; i < m; ++i) {
      if (targets[i] == ignore_index) continue;
      const float* prow = probs.data() + static_cast<int64_t>(i) * n;
      float* drow = li->grad.data() + static_cast<int64_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        drow[j] += g * (prow[j] - (j == targets[i] ? 1.0f : 0.0f));
      }
    }
  });
  return out;
}

Tensor SoftCrossEntropy(const Tensor& logits, const Tensor& soft_targets,
                        const std::vector<float>& row_weights) {
  const int m = logits.rows(), n = logits.cols();
  RF_CHECK(logits.shape() == soft_targets.shape());
  std::vector<float> weights = row_weights;
  if (weights.empty()) weights.assign(m, 1.0f);
  RF_CHECK_EQ(static_cast<int>(weights.size()), m);

  std::vector<float> probs(static_cast<size_t>(m) * n);
  double loss = 0.0;
  double weight_total = 0.0;
  for (int i = 0; i < m; ++i) {
    const float* row = logits.data() + static_cast<int64_t>(i) * n;
    float* prow = probs.data() + static_cast<int64_t>(i) * n;
    float mx = row[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float total = 0.0f;
    for (int j = 0; j < n; ++j) {
      prow[j] = std::exp(row[j] - mx);
      total += prow[j];
    }
    const float lse = mx + std::log(total);
    for (int j = 0; j < n; ++j) prow[j] /= total;
    if (weights[i] == 0.0f) continue;
    weight_total += weights[i];
    const float* trow = soft_targets.data() + static_cast<int64_t>(i) * n;
    double row_loss = 0.0;
    for (int j = 0; j < n; ++j) row_loss += trow[j] * (lse - row[j]);
    loss += weights[i] * row_loss;
  }
  Tensor out = MakeNode({1}, {logits.impl(), soft_targets.impl()});
  out.data()[0] =
      weight_total > 0.0 ? static_cast<float>(loss / weight_total) : 0.0f;
  TensorImpl* self = out.impl().get();
  auto li = logits.impl();
  auto ti = soft_targets.impl();
  SetBackward(&out, [self, li, ti, m, n, weights = std::move(weights),
                     weight_total, probs = std::move(probs)]() {
    if (!li->requires_grad || weight_total <= 0.0) return;
    li->EnsureGrad();
    const float g = self->grad[0] / static_cast<float>(weight_total);
    for (int i = 0; i < m; ++i) {
      if (weights[i] == 0.0f) continue;
      const float* prow = probs.data() + static_cast<int64_t>(i) * n;
      const float* trow = ti->data.data() + static_cast<int64_t>(i) * n;
      float* drow = li->grad.data() + static_cast<int64_t>(i) * n;
      float tsum = 0.0f;
      for (int j = 0; j < n; ++j) tsum += trow[j];
      for (int j = 0; j < n; ++j) {
        drow[j] += g * weights[i] * (prow[j] * tsum - trow[j]);
      }
    }
  });
  return out;
}

Tensor Mean(const Tensor& a) {
  const int64_t n = a.size();
  Tensor out = MakeNode({1}, {a.impl()});
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) total += a.data()[i];
  out.data()[0] = static_cast<float>(total / n);
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    const float g = self->grad[0] / n;
    for (int64_t i = 0; i < n; ++i) ai->grad[i] += g;
  });
  return out;
}

Tensor Sum(const Tensor& a) {
  const int64_t n = a.size();
  Tensor out = MakeNode({1}, {a.impl()});
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) total += a.data()[i];
  out.data()[0] = static_cast<float>(total);
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    const float g = self->grad[0];
    for (int64_t i = 0; i < n; ++i) ai->grad[i] += g;
  });
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  RF_CHECK(!parts.empty());
  const int n = parts[0].cols();
  int total_rows = 0;
  std::vector<ImplPtr> parents;
  for (const auto& p : parts) {
    RF_CHECK_EQ(p.cols(), n);
    total_rows += p.rows();
    parents.push_back(p.impl());
  }
  Tensor out = MakeNode({total_rows, n}, parents);
  int row = 0;
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.size(),
              out.data() + static_cast<int64_t>(row) * n);
    row += p.rows();
  }
  TensorImpl* self = out.impl().get();
  std::vector<ImplPtr> srcs;
  srcs.reserve(parts.size());
  for (const auto& p : parts) srcs.push_back(p.impl());
  SetBackward(&out, [self, srcs = std::move(srcs), n]() {
    int row = 0;
    for (const auto& src : srcs) {
      const int r = static_cast<int>(src->size()) / n;
      if (src->requires_grad) {
        src->EnsureGrad();
        const float* g = self->grad.data() + static_cast<int64_t>(row) * n;
        for (int64_t i = 0; i < static_cast<int64_t>(r) * n; ++i) {
          src->grad[i] += g[i];
        }
      }
      row += r;
    }
  });
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  RF_CHECK(!parts.empty());
  const int m = parts[0].rows();
  int total_cols = 0;
  std::vector<ImplPtr> parents;
  for (const auto& p : parts) {
    RF_CHECK_EQ(p.rows(), m);
    total_cols += p.cols();
    parents.push_back(p.impl());
  }
  Tensor out = MakeNode({m, total_cols}, parents);
  int col = 0;
  for (const auto& p : parts) {
    const int pc = p.cols();
    for (int i = 0; i < m; ++i) {
      std::copy(p.data() + static_cast<int64_t>(i) * pc,
                p.data() + static_cast<int64_t>(i + 1) * pc,
                out.data() + static_cast<int64_t>(i) * total_cols + col);
    }
    col += pc;
  }
  TensorImpl* self = out.impl().get();
  std::vector<ImplPtr> srcs;
  std::vector<int> widths;
  for (const auto& p : parts) {
    srcs.push_back(p.impl());
    widths.push_back(p.cols());
  }
  SetBackward(&out, [self, srcs = std::move(srcs), widths = std::move(widths),
                     m, total_cols]() {
    int col = 0;
    for (size_t s = 0; s < srcs.size(); ++s) {
      const auto& src = srcs[s];
      const int pc = widths[s];
      if (src->requires_grad) {
        src->EnsureGrad();
        for (int i = 0; i < m; ++i) {
          const float* g =
              self->grad.data() + static_cast<int64_t>(i) * total_cols + col;
          float* dst = src->grad.data() + static_cast<int64_t>(i) * pc;
          for (int j = 0; j < pc; ++j) dst[j] += g[j];
        }
      }
      col += pc;
    }
  });
  return out;
}

Tensor SliceRows(const Tensor& a, int start, int len) {
  RF_CHECK_EQ(a.rank(), 2);
  const int n = a.cols();
  RF_CHECK_GE(start, 0);
  RF_CHECK_LE(start + len, a.rows());
  Tensor out = MakeNode({len, n}, {a.impl()});
  std::copy(a.data() + static_cast<int64_t>(start) * n,
            a.data() + static_cast<int64_t>(start + len) * n, out.data());
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, start, len, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t i = 0; i < static_cast<int64_t>(len) * n; ++i) {
      ai->grad[static_cast<int64_t>(start) * n + i] += self->grad[i];
    }
  });
  return out;
}

Tensor SliceCols(const Tensor& a, int start, int len) {
  RF_CHECK_EQ(a.rank(), 2);
  const int m = a.rows(), n = a.cols();
  RF_CHECK_GE(start, 0);
  RF_CHECK_LE(start + len, n);
  Tensor out = MakeNode({m, len}, {a.impl()});
  for (int i = 0; i < m; ++i) {
    std::copy(a.data() + static_cast<int64_t>(i) * n + start,
              a.data() + static_cast<int64_t>(i) * n + start + len,
              out.data() + static_cast<int64_t>(i) * len);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, start, len, m, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < len; ++j) {
        ai->grad[static_cast<int64_t>(i) * n + start + j] +=
            self->grad[static_cast<int64_t>(i) * len + j];
      }
    }
  });
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int>& indices) {
  RF_CHECK_EQ(a.rank(), 2);
  const int n = a.cols();
  const int m = static_cast<int>(indices.size());
  Tensor out = MakeNode({m, n}, {a.impl()});
  for (int i = 0; i < m; ++i) {
    RF_CHECK_GE(indices[i], 0);
    RF_CHECK_LT(indices[i], a.rows());
    std::copy(a.data() + static_cast<int64_t>(indices[i]) * n,
              a.data() + static_cast<int64_t>(indices[i] + 1) * n,
              out.data() + static_cast<int64_t>(i) * n);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, indices, m, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < m; ++i) {
      const float* g = self->grad.data() + static_cast<int64_t>(i) * n;
      float* dst = ai->grad.data() + static_cast<int64_t>(indices[i]) * n;
      for (int j = 0; j < n; ++j) dst[j] += g[j];
    }
  });
  return out;
}

Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int>& ids) {
  return GatherRows(weight, ids);
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  const int m = x.rows(), n = x.cols();
  RF_CHECK_EQ(gamma.size(), n);
  RF_CHECK_EQ(beta.size(), n);
  Tensor out = MakeNode(x.shape(), {x.impl(), gamma.impl(), beta.impl()});
  std::vector<float> inv_std(m);
  std::vector<float> means(m);
  for (int i = 0; i < m; ++i) {
    const float* row = x.data() + static_cast<int64_t>(i) * n;
    float mean = 0.0f;
    for (int j = 0; j < n; ++j) mean += row[j];
    mean /= n;
    float var = 0.0f;
    for (int j = 0; j < n; ++j) var += (row[j] - mean) * (row[j] - mean);
    var /= n;
    const float is = 1.0f / std::sqrt(var + eps);
    means[i] = mean;
    inv_std[i] = is;
    float* orow = out.data() + static_cast<int64_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      orow[j] = (row[j] - mean) * is * gamma.data()[j] + beta.data()[j];
    }
  }
  TensorImpl* self = out.impl().get();
  auto xi = x.impl(), gi = gamma.impl(), bi = beta.impl();
  SetBackward(&out, [self, xi, gi, bi, m, n, means = std::move(means),
                     inv_std = std::move(inv_std)]() {
    for (int i = 0; i < m; ++i) {
      const float* xrow = xi->data.data() + static_cast<int64_t>(i) * n;
      const float* dy = self->grad.data() + static_cast<int64_t>(i) * n;
      const float is = inv_std[i];
      const float mean = means[i];
      if (gi->requires_grad) {
        gi->EnsureGrad();
        for (int j = 0; j < n; ++j) {
          gi->grad[j] += dy[j] * (xrow[j] - mean) * is;
        }
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        for (int j = 0; j < n; ++j) bi->grad[j] += dy[j];
      }
      if (xi->requires_grad) {
        xi->EnsureGrad();
        // dx = (g*dy - mean(g*dy) - xhat * mean(g*dy*xhat)) * inv_std
        float s1 = 0.0f, s2 = 0.0f;
        for (int j = 0; j < n; ++j) {
          const float gdy = dy[j] * gi->data[j];
          const float xhat = (xrow[j] - mean) * is;
          s1 += gdy;
          s2 += gdy * xhat;
        }
        s1 /= n;
        s2 /= n;
        float* dx = xi->grad.data() + static_cast<int64_t>(i) * n;
        for (int j = 0; j < n; ++j) {
          const float gdy = dy[j] * gi->data[j];
          const float xhat = (xrow[j] - mean) * is;
          dx[j] += (gdy - s1 - xhat * s2) * is;
        }
      }
    }
  });
  return out;
}

Tensor Dropout(const Tensor& x, float p, Rng* rng, bool training) {
  if (!training || p <= 0.0f) return x;
  RF_CHECK_LT(p, 1.0f);
  const int64_t n = x.size();
  std::vector<float> mask(n);
  const float keep = 1.0f - p;
  for (int64_t i = 0; i < n; ++i) {
    mask[i] = rng->Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  Tensor out = MakeNode(x.shape(), {x.impl()});
  for (int64_t i = 0; i < n; ++i) out.data()[i] = x.data()[i] * mask[i];
  TensorImpl* self = out.impl().get();
  auto xi = x.impl();
  SetBackward(&out, [self, xi, n, mask = std::move(mask)]() {
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    for (int64_t i = 0; i < n; ++i) xi->grad[i] += self->grad[i] * mask[i];
  });
  return out;
}

Tensor L2NormalizeRows(const Tensor& a, float eps) {
  const int m = a.rows(), n = a.cols();
  Tensor out = MakeNode(a.shape(), {a.impl()});
  std::vector<float> inv_norm(m);
  for (int i = 0; i < m; ++i) {
    const float* row = a.data() + static_cast<int64_t>(i) * n;
    float sq = 0.0f;
    for (int j = 0; j < n; ++j) sq += row[j] * row[j];
    const float in = 1.0f / (std::sqrt(sq) + eps);
    inv_norm[i] = in;
    float* orow = out.data() + static_cast<int64_t>(i) * n;
    for (int j = 0; j < n; ++j) orow[j] = row[j] * in;
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, m, n, inv_norm = std::move(inv_norm)]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < m; ++i) {
      const float* y = self->data.data() + static_cast<int64_t>(i) * n;
      const float* dy = self->grad.data() + static_cast<int64_t>(i) * n;
      float* dx = ai->grad.data() + static_cast<int64_t>(i) * n;
      float dot = 0.0f;
      for (int j = 0; j < n; ++j) dot += dy[j] * y[j];
      for (int j = 0; j < n; ++j) {
        dx[j] += (dy[j] - y[j] * dot) * inv_norm[i];
      }
    }
  });
  return out;
}

Tensor Reshape(const Tensor& a, std::vector<int> shape) {
  int64_t prod = 1;
  for (int d : shape) prod *= d;
  RF_CHECK_EQ(prod, a.size());
  Tensor out = MakeNode(shape, {a.impl()});
  std::copy(a.data(), a.data() + a.size(), out.data());
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  const int64_t n = a.size();
  SetBackward(&out, [self, ai, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t i = 0; i < n; ++i) ai->grad[i] += self->grad[i];
  });
  return out;
}

}  // namespace ops
}  // namespace resuformer
