#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"
#include "tensor/op_compute.h"
#include "tensor/plan.h"

namespace resuformer {
namespace ops {

namespace {

using ImplPtr = std::shared_ptr<TensorImpl>;

// ---------------------------------------------------------------------------
// Parallel substrate. The forward loops and partitioning helpers live in
// tensor/op_compute.h so the static-plan executor (tensor/plan.cc) replays
// the exact code the dynamic ops run — see the contract comment there.
// Kernels route through ThreadPool::Global() with static row partitioning
// once the work exceeds a threshold; below it (or with a single-thread
// pool) they run the serial path inline. Partitions are over *output* rows
// wherever possible so no two workers ever write the same element, and
// per-element accumulation order matches the serial loops — which keeps
// results bit-identical to the legacy kernels at any thread count for those
// paths. The only reductions that need per-worker buffers (LayerNorm
// dgamma/dbeta, CrossEntropy loss) reduce the buffers in worker order, so
// they are deterministic for a fixed thread count.
// ---------------------------------------------------------------------------

using opcompute::ForElems;
using opcompute::ForRows;
using opcompute::GemmAccRows;
using opcompute::kGemmJB;
using opcompute::kGemmParallelWork;
using opcompute::kRowParallelWork;
using opcompute::ShouldParallelize;

/// dA[r0:r1, :] += dC[r0:r1, :] * B^T for dC[m,n], B[k,n], dA[m,k].
/// Four dot products against consecutive B rows share one pass over the dC
/// row; each dot sums j ascending, matching the serial kernel exactly.
void GemmAccRowsNT(const float* dc, const float* b, float* da, int k, int n,
                   int64_t r0, int64_t r1) {
  for (int64_t i = r0; i < r1; ++i) {
    const float* dcrow = dc + i * n;
    float* darow = da + i * k;
    int kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const float* b0 = b + static_cast<int64_t>(kk) * n;
      const float* b1 = b0 + n;
      const float* b2 = b1 + n;
      const float* b3 = b2 + n;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (int j = 0; j < n; ++j) {
        const float d = dcrow[j];
        acc0 += d * b0[j];
        acc1 += d * b1[j];
        acc2 += d * b2[j];
        acc3 += d * b3[j];
      }
      darow[kk] += acc0;
      darow[kk + 1] += acc1;
      darow[kk + 2] += acc2;
      darow[kk + 3] += acc3;
    }
    for (; kk < k; ++kk) {
      const float* brow = b + static_cast<int64_t>(kk) * n;
      float acc = 0.0f;
      for (int j = 0; j < n; ++j) acc += dcrow[j] * brow[j];
      darow[kk] += acc;
    }
  }
}

/// dB[k0:k1, :] += A^T * dC restricted to dB rows [k0, k1), for A[m,k],
/// dC[m,n]. The i loop stays outermost so every dB element accumulates its m
/// contributions in ascending i order — the serial order — and the row
/// restriction means workers never share an output element.
void GemmAccRowsTN(const float* a, const float* dc, float* db, int64_t m,
                   int k, int n, int64_t k0, int64_t k1) {
  for (int j0 = 0; j0 < n; j0 += kGemmJB) {
    const int j1 = std::min(n, j0 + kGemmJB);
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      const float* dcrow = dc + i * n;
      for (int64_t kk = k0; kk < k1; ++kk) {
        const float av = arow[kk];  // no zero-skip: preserve NaN propagation
        float* dbrow = db + kk * n;
        for (int j = j0; j < j1; ++j) dbrow[j] += av * dcrow[j];
      }
    }
  }
}

/// Creates the result node of an op: allocates storage, records parents, and
/// decides whether the node participates in autograd.
Tensor MakeNode(std::vector<int> shape, std::vector<ImplPtr> parents) {
  // Count every node against the plan recorder's instruction count: an op
  // without a recording hook (losses, training-mode dropout, reductions)
  // makes the counts diverge and Finish rejects the trace.
  plan::NoteNode();
  Tensor out = Tensor::Zeros(std::move(shape));
  bool needs_grad = false;
  if (NoGradGuard::GradEnabled()) {
    for (const auto& p : parents) {
      if (p && p->requires_grad) {
        needs_grad = true;
        break;
      }
    }
  }
  if (needs_grad) {
    out.impl()->requires_grad = true;
    out.impl()->parents = std::move(parents);
  }
  return out;
}

/// Installs the backward closure only when the node tracks gradients. In
/// RF_DCHECK builds the closure is wrapped to assert the node's own
/// gradient was materialized (seeded by the root or accumulated by its
/// children) before the op's backward reads it; release builds install the
/// closure unwrapped, so the hot path carries no extra indirection.
template <typename Fn>
void SetBackward(Tensor* out, Fn fn) {
  if (!out->impl()->requires_grad) return;
  if constexpr (DcheckEnabled()) {
    TensorImpl* self = out->impl().get();
    out->impl()->backward_fn = [self, fn = std::move(fn)]() {
      RF_DCHECK_EQ(static_cast<int64_t>(self->grad.size()), self->size())
          << "op backward ran before this node's gradient buffer was "
             "materialized — the graph below it is inconsistent";
      fn();
    };
  } else {
    out->impl()->backward_fn = std::move(fn);
  }
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

// ---------------------------------------------------------------------------
// Observability. Each GEMM-bearing op opens a TRACE_SPAN (one relaxed load
// when tracing is off) and bumps a call + forward-flop counter (relaxed
// atomic adds, always on — these are the structural tallies bench_micro
// snapshots into BENCH_MICRO.json). Instrument pointers are resolved once
// through function-local statics; the hot path never touches the registry.
// ---------------------------------------------------------------------------

void CountGemm(metrics::Counter* calls, int64_t mul_adds) {
  static metrics::Counter* flops =
      metrics::MetricsRegistry::Global().GetCounter("ops.gemm.forward_flops");
  calls->Increment();
  flops->Increment(2 * mul_adds);
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TRACE_SPAN("gemm.nn");
  RF_CHECK_EQ(a.rank(), 2);
  RF_CHECK_EQ(b.rank(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  RF_CHECK_EQ(k, b.dim(0));
  static metrics::Counter* calls =
      metrics::MetricsRegistry::Global().GetCounter("ops.gemm_nn.calls");
  CountGemm(calls, static_cast<int64_t>(m) * k * n);
  Tensor out = MakeNode({m, n}, {a.impl(), b.impl()});
  opcompute::MatMulNNForward(a.data(), b.data(), out.data(), m, k, n);
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordGemm(plan::GetExecFns().matmul_nn,
                                         "matmul_nn", a, b, out, m, k, n);
  }
  const int64_t work = static_cast<int64_t>(m) * k * n;
  TensorImpl* self = out.impl().get();
  auto ai = a.impl(), bi = b.impl();
  SetBackward(&out, [self, ai, bi, m, k, n, work]() {
    const float* dc = self->grad.data();
    if (ai->requires_grad) {
      ai->EnsureGrad();
      float* da = ai->grad.data();
      const float* pb = bi->data_ptr();
      // dA = dC * B^T, partitioned over dA rows.
      ForRows(m, work, kGemmParallelWork,
              [&](int /*worker*/, int64_t r0, int64_t r1) {
                GemmAccRowsNT(dc, pb, da, k, n, r0, r1);
              });
    }
    if (bi->requires_grad) {
      bi->EnsureGrad();
      float* db = bi->grad.data();
      const float* pa = ai->data_ptr();
      // dB = A^T * dC, partitioned over dB rows so the shared output needs
      // no atomics or per-worker buffers.
      ForRows(k, work, kGemmParallelWork,
              [&](int /*worker*/, int64_t k0, int64_t k1) {
                GemmAccRowsTN(pa, dc, db, m, k, n, k0, k1);
              });
    }
  });
  return out;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  TRACE_SPAN("gemm.nt");
  RF_CHECK_EQ(a.rank(), 2);
  RF_CHECK_EQ(b.rank(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  RF_CHECK_EQ(k, b.dim(1));
  static metrics::Counter* calls =
      metrics::MetricsRegistry::Global().GetCounter("ops.gemm_nt.calls");
  CountGemm(calls, static_cast<int64_t>(m) * k * n);
  Tensor out = MakeNode({m, n}, {a.impl(), b.impl()});
  opcompute::MatMulNTForward(a.data(), b.data(), out.data(), m, k, n);
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordGemm(plan::GetExecFns().matmul_nt,
                                         "matmul_nt", a, b, out, m, k, n);
  }
  const int64_t work = static_cast<int64_t>(m) * k * n;
  TensorImpl* self = out.impl().get();
  auto ai = a.impl(), bi = b.impl();
  SetBackward(&out, [self, ai, bi, m, k, n, work]() {
    const float* dc = self->grad.data();
    if (ai->requires_grad) {
      ai->EnsureGrad();
      float* da = ai->grad.data();
      const float* pb = bi->data_ptr();
      // dA = dC * B ([m,n] x [n,k]), partitioned over dA rows.
      ForRows(m, work, kGemmParallelWork,
              [&](int /*worker*/, int64_t r0, int64_t r1) {
                kernels::GemmNN(dc, n, pb, k, da, k, n, k, r0, r1);
              });
    }
    if (bi->requires_grad) {
      bi->EnsureGrad();
      float* db = bi->grad.data();
      const float* pa = ai->data_ptr();
      // dB = dC^T * A ([n,m] x [m,k]), partitioned over dB rows.
      ForRows(n, work, kGemmParallelWork,
              [&](int /*worker*/, int64_t r0, int64_t r1) {
                kernels::GemmTN(dc, n, pa, k, db, k, m, k, r0, r1);
              });
    }
  });
  return out;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  TRACE_SPAN("gemm.tn");
  RF_CHECK_EQ(a.rank(), 2);
  RF_CHECK_EQ(b.rank(), 2);
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  RF_CHECK_EQ(k, b.dim(0));
  static metrics::Counter* calls =
      metrics::MetricsRegistry::Global().GetCounter("ops.gemm_tn.calls");
  CountGemm(calls, static_cast<int64_t>(m) * k * n);
  Tensor out = MakeNode({m, n}, {a.impl(), b.impl()});
  opcompute::MatMulTNForward(a.data(), b.data(), out.data(), m, k, n);
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordGemm(plan::GetExecFns().matmul_tn,
                                         "matmul_tn", a, b, out, m, k, n);
  }
  const int64_t work = static_cast<int64_t>(m) * k * n;
  TensorImpl* self = out.impl().get();
  auto ai = a.impl(), bi = b.impl();
  SetBackward(&out, [self, ai, bi, m, k, n, work]() {
    const float* dc = self->grad.data();
    if (ai->requires_grad) {
      ai->EnsureGrad();
      float* da = ai->grad.data();
      const float* pb = bi->data_ptr();
      // dA = B * dC^T ([k,n] x [n,m]), partitioned over dA rows.
      ForRows(k, work, kGemmParallelWork,
              [&](int /*worker*/, int64_t r0, int64_t r1) {
                kernels::GemmNT(pb, n, dc, n, da, m, m, n, r0, r1);
              });
    }
    if (bi->requires_grad) {
      bi->EnsureGrad();
      float* db = bi->grad.data();
      const float* pa = ai->data_ptr();
      // dB = A * dC ([k,m] x [m,n]), partitioned over dB rows.
      ForRows(k, work, kGemmParallelWork,
              [&](int /*worker*/, int64_t r0, int64_t r1) {
                kernels::GemmNN(pa, m, dc, n, db, n, m, n, r0, r1);
              });
    }
  });
  return out;
}

Tensor Transpose(const Tensor& a) {
  RF_CHECK_EQ(a.rank(), 2);
  const int m = a.dim(0), n = a.dim(1);
  Tensor out = MakeNode({n, m}, {a.impl()});
  opcompute::TransposeForward(a.data(), out.data(), m, n);
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordUnary(plan::GetExecFns().transpose,
                                          "transpose", a, out);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, m, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        ai->grad[i * n + j] += self->grad[j * m + i];
      }
    }
  });
  return out;
}

namespace {
Tensor AddSubImpl(const Tensor& a, const Tensor& b, float sign) {
  const bool broadcast = b.rank() == 1 && a.rank() == 2 &&
                         b.size() == a.cols() && !SameShape(a, b);
  if (!broadcast) {
    RF_CHECK(SameShape(a, b)) << a.ShapeString() << " vs " << b.ShapeString();
  }
  Tensor out = MakeNode(a.shape(), {a.impl(), b.impl()});
  const int64_t n = a.size();
  const int cols = a.cols();
  opcompute::AddSubForward(a.data(), b.data(), out.data(), n, cols, broadcast,
                           sign);
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordBinary(plan::GetExecFns().add_sub,
                                           sign > 0.0f ? "add" : "sub", a, b,
                                           out, sign, broadcast);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl(), bi = b.impl();
  SetBackward(&out, [self, ai, bi, n, cols, broadcast, sign]() {
    if (ai->requires_grad) {
      ai->EnsureGrad();
      ForElems(n, [self, ai](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) ai->grad[i] += self->grad[i];
      });
    }
    if (bi->requires_grad) {
      bi->EnsureGrad();
      if (broadcast) {
        // Broadcast rows fold into one shared vector: stays serial (cheap,
        // and parallel accumulation would need per-worker buffers).
        for (int64_t i = 0; i < n; ++i) {
          bi->grad[i % cols] += sign * self->grad[i];
        }
      } else {
        ForElems(n, [self, bi, sign](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            bi->grad[i] += sign * self->grad[i];
          }
        });
      }
    }
  });
  return out;
}
}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) { return AddSubImpl(a, b, 1.0f); }
Tensor Sub(const Tensor& a, const Tensor& b) { return AddSubImpl(a, b, -1.0f); }

Tensor Mul(const Tensor& a, const Tensor& b) {
  RF_CHECK(SameShape(a, b));
  Tensor out = MakeNode(a.shape(), {a.impl(), b.impl()});
  const int64_t n = a.size();
  opcompute::MulForward(a.data(), b.data(), out.data(), n);
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordBinary(plan::GetExecFns().mul, "mul", a, b,
                                           out);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl(), bi = b.impl();
  SetBackward(&out, [self, ai, bi, n]() {
    if (ai->requires_grad) {
      ai->EnsureGrad();
      ForElems(n, [self, ai, bi](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          ai->grad[i] += self->grad[i] * bi->data_ptr()[i];
        }
      });
    }
    if (bi->requires_grad) {
      bi->EnsureGrad();
      ForElems(n, [self, ai, bi](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          bi->grad[i] += self->grad[i] * ai->data_ptr()[i];
        }
      });
    }
  });
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = MakeNode(a.shape(), {a.impl()});
  const int64_t n = a.size();
  opcompute::ScaleForward(a.data(), out.data(), n, s);
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordUnary(plan::GetExecFns().scale, "scale", a,
                                          out, s);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, n, s]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    ForElems(n, [self, ai, s](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) ai->grad[i] += self->grad[i] * s;
    });
  });
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = MakeNode(a.shape(), {a.impl()});
  const int64_t n = a.size();
  opcompute::AddScalarForward(a.data(), out.data(), n, s);
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordUnary(plan::GetExecFns().add_scalar,
                                          "add_scalar", a, out, s);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t i = 0; i < n; ++i) ai->grad[i] += self->grad[i];
  });
  return out;
}

namespace {
/// Generic elementwise op: forward(x) and dydx computed from (x, y).
template <typename FwdFn, typename BwdFn>
Tensor Elementwise(const Tensor& a, FwdFn fwd, BwdFn dydx) {
  Tensor out = MakeNode(a.shape(), {a.impl()});
  const int64_t n = a.size();
  opcompute::ElementwiseForward(a.data(), out.data(), n, fwd);
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, n, dydx]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    ForElems(n, [self, ai, dydx](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        ai->grad[i] += self->grad[i] * dydx(ai->data_ptr()[i], self->data_ptr()[i]);
      }
    });
  });
  return out;
}
}  // namespace

Tensor Relu(const Tensor& a) {
  Tensor out = Elementwise(a, opcompute::ReluScalar,
                           [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordUnary(plan::GetExecFns().relu, "relu", a,
                                          out);
  }
  return out;
}

Tensor Tanh(const Tensor& a) {
  Tensor out = Elementwise(a, opcompute::TanhScalar,
                           [](float, float y) { return 1.0f - y * y; });
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordUnary(plan::GetExecFns().tanh, "tanh", a,
                                          out);
  }
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out = Elementwise(a, opcompute::SigmoidScalar,
                           [](float, float y) { return y * (1.0f - y); });
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordUnary(plan::GetExecFns().sigmoid, "sigmoid",
                                          a, out);
  }
  return out;
}

Tensor Gelu(const Tensor& a) {
  Tensor out = Elementwise(a, opcompute::GeluScalar, [](float x, float) {
    constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
    const float u = kC * (x + 0.044715f * x * x * x);
    const float t = std::tanh(u);
    const float du = kC * (1.0f + 3.0f * 0.044715f * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
  });
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordUnary(plan::GetExecFns().gelu, "gelu", a,
                                          out);
  }
  return out;
}

Tensor Softmax(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out = MakeNode(a.shape(), {a.impl()});
  const int64_t work = static_cast<int64_t>(m) * n;
  opcompute::SoftmaxForward(a.data(), out.data(), m, n);
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordUnary(plan::GetExecFns().softmax, "softmax",
                                          a, out);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, m, n, work]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    ForRows(m, work, kRowParallelWork,
            [self, ai, n](int /*worker*/, int64_t r0, int64_t r1) {
              for (int64_t i = r0; i < r1; ++i) {
                const float* y = self->data_ptr() + i * n;
                const float* dy = self->grad.data() + i * n;
                float* dx = ai->grad.data() + i * n;
                float dot = 0.0f;
                for (int j = 0; j < n; ++j) dot += dy[j] * y[j];
                for (int j = 0; j < n; ++j) dx[j] += (dy[j] - dot) * y[j];
              }
            });
  });
  return out;
}

Tensor LogSoftmax(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out = MakeNode(a.shape(), {a.impl()});
  const int64_t work = static_cast<int64_t>(m) * n;
  opcompute::LogSoftmaxForward(a.data(), out.data(), m, n);
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordUnary(plan::GetExecFns().log_softmax,
                                          "log_softmax", a, out);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, m, n, work]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    ForRows(m, work, kRowParallelWork,
            [self, ai, n](int /*worker*/, int64_t r0, int64_t r1) {
              for (int64_t i = r0; i < r1; ++i) {
                const float* y = self->data_ptr() + i * n;
                const float* dy = self->grad.data() + i * n;
                float* dx = ai->grad.data() + i * n;
                float total = 0.0f;
                for (int j = 0; j < n; ++j) total += dy[j];
                for (int j = 0; j < n; ++j) {
                  dx[j] += dy[j] - std::exp(y[j]) * total;
                }
              }
            });
  });
  return out;
}

Tensor ScaleAddSoftmax(const Tensor& a, float scale, const Tensor& bias) {
  const int m = a.rows(), n = a.cols();
  const bool has_bias = bias.defined();
  bool bias_broadcast = false;
  if (has_bias) {
    if (bias.rank() == 1 && a.rank() == 2 && bias.size() == n &&
        !SameShape(a, bias)) {
      bias_broadcast = true;
    } else {
      RF_CHECK(SameShape(a, bias))
          << a.ShapeString() << " vs " << bias.ShapeString();
    }
  }
  std::vector<ImplPtr> parents = {a.impl()};
  if (has_bias) parents.push_back(bias.impl());
  Tensor out = MakeNode(a.shape(), std::move(parents));
  const int64_t work = static_cast<int64_t>(m) * n;
  opcompute::ScaleAddSoftmaxForward(a.data(),
                                    has_bias ? bias.data() : nullptr,
                                    bias_broadcast, out.data(), m, n, scale);
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordScaleAddSoftmax(a, bias, out, scale,
                                                    bias_broadcast);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  auto bi = has_bias ? bias.impl() : ImplPtr();
  SetBackward(&out, [self, ai, bi, m, n, work, scale, bias_broadcast]() {
    const bool need_da = ai->requires_grad;
    const bool need_dbias = bi != nullptr && bi->requires_grad;
    if (!need_da && !need_dbias) return;
    if (need_da) ai->EnsureGrad();
    if (need_dbias) bi->EnsureGrad();
    if (need_dbias && bias_broadcast) {
      // The broadcast bias gradient folds every row into one shared vector;
      // stay serial (rare: attention biases are buffers, not parameters).
      std::vector<float> dt(n);
      for (int64_t i = 0; i < m; ++i) {
        const float* y = self->data_ptr() + i * n;
        const float* dy = self->grad.data() + i * n;
        kernels::SoftmaxBackwardRow(y, dy, dt.data(), n, /*out_overwrite=*/true);
        for (int j = 0; j < n; ++j) bi->grad[j] += dt[j];
        if (need_da) {
          float* da = ai->grad.data() + i * n;
          for (int j = 0; j < n; ++j) da[j] += scale * dt[j];
        }
      }
      return;
    }
    ForRows(m, work, kRowParallelWork,
            [&](int /*worker*/, int64_t r0, int64_t r1) {
              std::vector<float> dt(n);
              for (int64_t i = r0; i < r1; ++i) {
                const float* y = self->data_ptr() + i * n;
                const float* dy = self->grad.data() + i * n;
                kernels::SoftmaxBackwardRow(y, dy, dt.data(), n,
                                            /*out_overwrite=*/true);
                if (need_da) {
                  float* da = ai->grad.data() + i * n;
                  for (int j = 0; j < n; ++j) da[j] += scale * dt[j];
                }
                if (need_dbias) {
                  float* db = bi->grad.data() + i * n;
                  for (int j = 0; j < n; ++j) db[j] += dt[j];
                }
              }
            });
  });
  return out;
}

Tensor FusedMultiHeadAttention(const Tensor& q, const Tensor& k,
                               const Tensor& v, const Tensor& bias,
                               int num_heads) {
  TRACE_SPAN("attention.fused");
  RF_CHECK_EQ(q.rank(), 2);
  RF_CHECK(SameShape(q, k));
  RF_CHECK(SameShape(q, v));
  const int t_len = q.dim(0), dim = q.dim(1);
  RF_CHECK_GT(num_heads, 0);
  RF_CHECK_EQ(dim % num_heads, 0);
  const int head_dim = dim / num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  const bool has_bias = bias.defined();
  if (has_bias) {
    RF_CHECK_EQ(bias.rank(), 2);
    RF_CHECK_EQ(bias.dim(0), t_len);
    RF_CHECK_EQ(bias.dim(1), t_len);
  }
  std::vector<ImplPtr> parents = {q.impl(), k.impl(), v.impl()};
  if (has_bias) parents.push_back(bias.impl());
  Tensor out = MakeNode({t_len, dim}, std::move(parents));

  // Attention probabilities for every head, [H, T, T]; kept alive by the
  // backward closure when gradients are tracked, recycled immediately
  // otherwise. shared_ptr because std::function requires copyability.
  auto attn = std::make_shared<ArenaBuffer>(static_cast<int64_t>(num_heads) *
                                            t_len * t_len);
  const int64_t rows = static_cast<int64_t>(num_heads) * t_len;
  const int64_t work = 2 * rows * t_len * head_dim;
  static metrics::Counter* calls =
      metrics::MetricsRegistry::Global().GetCounter(
          "ops.fused_attention.calls");
  CountGemm(calls, work);  // scores + output GEMMs: 2·H·T·T·head_dim MACs
  opcompute::FusedAttentionForward(q.data(), k.data(), v.data(),
                                   has_bias ? bias.data() : nullptr,
                                   attn->data(), out.data(), t_len, dim,
                                   num_heads);
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordFusedAttention(q, k, v, bias, out, t_len,
                                                   dim, num_heads);
  }

  TensorImpl* self = out.impl().get();
  auto qi = q.impl(), ki = k.impl(), vi = v.impl();
  auto bi = has_bias ? bias.impl() : ImplPtr();
  SetBackward(&out, [self, qi, ki, vi, bi, attn, t_len, dim, head_dim,
                     num_heads, scale, rows, work]() {
    const bool need_dq = qi->requires_grad;
    const bool need_dk = ki->requires_grad;
    const bool need_dv = vi->requires_grad;
    const bool need_dbias = bi != nullptr && bi->requires_grad;
    const bool need_dscores = need_dq || need_dk || need_dbias;
    if (!need_dscores && !need_dv) return;
    if (need_dq) qi->EnsureGrad();
    if (need_dk) ki->EnsureGrad();
    if (need_dv) vi->EnsureGrad();
    if (need_dbias) bi->EnsureGrad();
    const float* pattn = attn->data();
    const float* pdy = self->grad.data();
    const float* pq = qi->data_ptr();
    const float* pk = ki->data_ptr();
    const float* pv = vi->data_ptr();
    const int64_t hsz = static_cast<int64_t>(t_len) * t_len;

    // Phase 1: dScores[h,i,:] = softmax_backward(dAttn[h,i,:]) where
    // dAttn[h,i,j] = dot(dY[i, head h], V[j, head h]). Unscaled — the bias
    // gradient is taken before the 1/sqrt(d) factor, exactly like the
    // composed Scale->Add->Softmax chain.
    ArenaBuffer dscores_buf(need_dscores ? rows * t_len : 0);
    float* pds = dscores_buf.data();
    if (need_dscores) {
      ForRows(rows, work, kGemmParallelWork,
              [&](int /*worker*/, int64_t r0, int64_t r1) {
                for (int64_t idx = r0; idx < r1; ++idx) {
                  const int h = static_cast<int>(idx / t_len);
                  const int64_t i = idx % t_len;
                  const int off = h * head_dim;
                  float* dshead = pds + h * hsz;
                  kernels::GemmNTVec(pdy + off, dim, pv + off, dim, dshead,
                                     t_len, t_len, head_dim, i, i + 1);
                  float* dsrow = dshead + i * t_len;
                  kernels::SoftmaxBackwardRow(pattn + h * hsz + i * t_len,
                                              dsrow, dsrow, t_len,
                                              /*out_overwrite=*/true);
                }
              });
    }

    // Phase 2: the bias is shared across heads, so its gradient reduces
    // over h — serial in ascending head order (deterministic, cheap).
    if (need_dbias) {
      for (int h = 0; h < num_heads; ++h) {
        const float* dshead = pds + h * hsz;
        for (int64_t e = 0; e < hsz; ++e) bi->grad[e] += dshead[e];
      }
    }

    if (need_dq || need_dk) {
      // Fold the score scale into dScores once; dQ/dK read the scaled copy.
      ForElems(rows * t_len, [pds, scale](int64_t begin, int64_t end) {
        for (int64_t e = begin; e < end; ++e) pds[e] *= scale;
      });
    }

    // Phase 3: dQ[i, head h] += dS[h,i,:] * K[:, head h] — row-partitioned.
    if (need_dq) {
      float* dq = qi->grad.data();
      ForRows(rows, work, kGemmParallelWork,
              [&](int /*worker*/, int64_t r0, int64_t r1) {
                for (int64_t idx = r0; idx < r1; ++idx) {
                  const int h = static_cast<int>(idx / t_len);
                  const int64_t i = idx % t_len;
                  const int off = h * head_dim;
                  kernels::GemmNN(pds + h * hsz, t_len, pk + off, dim,
                                  dq + off, dim, t_len, head_dim, i, i + 1);
                }
              });
    }

    // Phase 4: dK[j, h] += dS[h,:,j]^T Q[:, h]; dV[j, h] += A[h,:,j]^T dY.
    // Both reduce over query rows i for a fixed key/value row j, so the
    // (h, j) partition keeps writers disjoint.
    if (need_dk || need_dv) {
      float* dk = need_dk ? ki->grad.data() : nullptr;
      float* dv = need_dv ? vi->grad.data() : nullptr;
      ForRows(rows, work, kGemmParallelWork,
              [&](int /*worker*/, int64_t r0, int64_t r1) {
                for (int64_t idx = r0; idx < r1; ++idx) {
                  const int h = static_cast<int>(idx / t_len);
                  const int64_t j = idx % t_len;
                  const int off = h * head_dim;
                  if (dk != nullptr) {
                    kernels::GemmTN(pds + h * hsz, t_len, pq + off, dim,
                                    dk + off, dim, t_len, head_dim, j, j + 1);
                  }
                  if (dv != nullptr) {
                    kernels::GemmTN(pattn + h * hsz, t_len, pdy + off, dim,
                                    dv + off, dim, t_len, head_dim, j, j + 1);
                  }
                }
              });
    }
  });
  return out;
}

Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets,
                    int ignore_index) {
  const int m = logits.rows(), n = logits.cols();
  RF_CHECK_EQ(static_cast<int>(targets.size()), m);
  // Fused: compute softmax rows once, reuse them in backward. Per-row loss
  // terms are stored and reduced serially in row order, so the total is
  // bit-identical to the legacy serial kernel at any thread count.
  std::vector<float> probs(static_cast<size_t>(m) * n);
  std::vector<float> row_loss(m, 0.0f);
  std::vector<unsigned char> row_active(m, 0);
  const int64_t work = static_cast<int64_t>(m) * n;
  const float* plogits = logits.data();
  ForRows(m, work, kRowParallelWork,
          [&](int /*worker*/, int64_t r0, int64_t r1) {
            for (int64_t i = r0; i < r1; ++i) {
              const float* row = plogits + i * n;
              float* prow = probs.data() + i * n;
              float mx = row[0];
              for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
              float total = 0.0f;
              for (int j = 0; j < n; ++j) {
                prow[j] = std::exp(row[j] - mx);
                total += prow[j];
              }
              for (int j = 0; j < n; ++j) prow[j] /= total;
              if (targets[i] == ignore_index) continue;
              RF_CHECK_GE(targets[i], 0);
              RF_CHECK_LT(targets[i], n);
              row_loss[i] = -std::log(std::max(prow[targets[i]], 1e-12f));
              row_active[i] = 1;
            }
          });
  double loss = 0.0;
  int active = 0;
  for (int i = 0; i < m; ++i) {
    if (!row_active[i]) continue;
    loss += row_loss[i];
    ++active;
  }
  Tensor out = MakeNode({1}, {logits.impl()});
  out.data()[0] = active > 0 ? static_cast<float>(loss / active) : 0.0f;
  TensorImpl* self = out.impl().get();
  auto li = logits.impl();
  SetBackward(&out, [self, li, m, n, work, targets, ignore_index, active,
                     probs = std::move(probs)]() {
    if (!li->requires_grad || active == 0) return;
    li->EnsureGrad();
    const float g = self->grad[0] / active;
    ForRows(m, work, kRowParallelWork,
            [&](int /*worker*/, int64_t r0, int64_t r1) {
              for (int64_t i = r0; i < r1; ++i) {
                if (targets[i] == ignore_index) continue;
                const float* prow = probs.data() + i * n;
                float* drow = li->grad.data() + i * n;
                for (int j = 0; j < n; ++j) {
                  drow[j] += g * (prow[j] - (j == targets[i] ? 1.0f : 0.0f));
                }
              }
            });
  });
  return out;
}

Tensor SoftCrossEntropy(const Tensor& logits, const Tensor& soft_targets,
                        const std::vector<float>& row_weights) {
  const int m = logits.rows(), n = logits.cols();
  RF_CHECK(logits.shape() == soft_targets.shape());
  std::vector<float> weights = row_weights;
  if (weights.empty()) weights.assign(m, 1.0f);
  RF_CHECK_EQ(static_cast<int>(weights.size()), m);

  std::vector<float> probs(static_cast<size_t>(m) * n);
  double loss = 0.0;
  double weight_total = 0.0;
  for (int i = 0; i < m; ++i) {
    const float* row = logits.data() + static_cast<int64_t>(i) * n;
    float* prow = probs.data() + static_cast<int64_t>(i) * n;
    float mx = row[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float total = 0.0f;
    for (int j = 0; j < n; ++j) {
      prow[j] = std::exp(row[j] - mx);
      total += prow[j];
    }
    const float lse = mx + std::log(total);
    for (int j = 0; j < n; ++j) prow[j] /= total;
    if (weights[i] == 0.0f) continue;
    weight_total += weights[i];
    const float* trow = soft_targets.data() + static_cast<int64_t>(i) * n;
    double row_loss = 0.0;
    for (int j = 0; j < n; ++j) row_loss += trow[j] * (lse - row[j]);
    loss += weights[i] * row_loss;
  }
  Tensor out = MakeNode({1}, {logits.impl(), soft_targets.impl()});
  out.data()[0] =
      weight_total > 0.0 ? static_cast<float>(loss / weight_total) : 0.0f;
  TensorImpl* self = out.impl().get();
  auto li = logits.impl();
  auto ti = soft_targets.impl();
  SetBackward(&out, [self, li, ti, m, n, weights = std::move(weights),
                     weight_total, probs = std::move(probs)]() {
    if (!li->requires_grad || weight_total <= 0.0) return;
    li->EnsureGrad();
    const float g = self->grad[0] / static_cast<float>(weight_total);
    for (int i = 0; i < m; ++i) {
      if (weights[i] == 0.0f) continue;
      const float* prow = probs.data() + static_cast<int64_t>(i) * n;
      const float* trow = ti->data_ptr() + static_cast<int64_t>(i) * n;
      float* drow = li->grad.data() + static_cast<int64_t>(i) * n;
      float tsum = 0.0f;
      for (int j = 0; j < n; ++j) tsum += trow[j];
      for (int j = 0; j < n; ++j) {
        drow[j] += g * weights[i] * (prow[j] * tsum - trow[j]);
      }
    }
  });
  return out;
}

Tensor Mean(const Tensor& a) {
  const int64_t n = a.size();
  Tensor out = MakeNode({1}, {a.impl()});
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) total += a.data()[i];
  out.data()[0] = static_cast<float>(total / n);
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    const float g = self->grad[0] / n;
    for (int64_t i = 0; i < n; ++i) ai->grad[i] += g;
  });
  return out;
}

Tensor Sum(const Tensor& a) {
  const int64_t n = a.size();
  Tensor out = MakeNode({1}, {a.impl()});
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) total += a.data()[i];
  out.data()[0] = static_cast<float>(total);
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    const float g = self->grad[0];
    for (int64_t i = 0; i < n; ++i) ai->grad[i] += g;
  });
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  RF_CHECK(!parts.empty());
  const int n = parts[0].cols();
  int total_rows = 0;
  std::vector<ImplPtr> parents;
  for (const auto& p : parts) {
    RF_CHECK_EQ(p.cols(), n);
    total_rows += p.rows();
    parents.push_back(p.impl());
  }
  Tensor out = MakeNode({total_rows, n}, parents);
  int row = 0;
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.size(),
              out.data() + static_cast<int64_t>(row) * n);
    row += p.rows();
  }
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordConcat(plan::GetExecFns().concat_rows,
                                           "concat_rows", parts, out);
  }
  TensorImpl* self = out.impl().get();
  std::vector<ImplPtr> srcs;
  srcs.reserve(parts.size());
  for (const auto& p : parts) srcs.push_back(p.impl());
  SetBackward(&out, [self, srcs = std::move(srcs), n]() {
    int row = 0;
    for (const auto& src : srcs) {
      const int r = static_cast<int>(src->size()) / n;
      if (src->requires_grad) {
        src->EnsureGrad();
        const float* g = self->grad.data() + static_cast<int64_t>(row) * n;
        for (int64_t i = 0; i < static_cast<int64_t>(r) * n; ++i) {
          src->grad[i] += g[i];
        }
      }
      row += r;
    }
  });
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  RF_CHECK(!parts.empty());
  const int m = parts[0].rows();
  int total_cols = 0;
  std::vector<ImplPtr> parents;
  for (const auto& p : parts) {
    RF_CHECK_EQ(p.rows(), m);
    total_cols += p.cols();
    parents.push_back(p.impl());
  }
  Tensor out = MakeNode({m, total_cols}, parents);
  int col = 0;
  for (const auto& p : parts) {
    const int pc = p.cols();
    for (int i = 0; i < m; ++i) {
      std::copy(p.data() + static_cast<int64_t>(i) * pc,
                p.data() + static_cast<int64_t>(i + 1) * pc,
                out.data() + static_cast<int64_t>(i) * total_cols + col);
    }
    col += pc;
  }
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordConcat(plan::GetExecFns().concat_cols,
                                           "concat_cols", parts, out);
  }
  TensorImpl* self = out.impl().get();
  std::vector<ImplPtr> srcs;
  std::vector<int> widths;
  for (const auto& p : parts) {
    srcs.push_back(p.impl());
    widths.push_back(p.cols());
  }
  SetBackward(&out, [self, srcs = std::move(srcs), widths = std::move(widths),
                     m, total_cols]() {
    int col = 0;
    for (size_t s = 0; s < srcs.size(); ++s) {
      const auto& src = srcs[s];
      const int pc = widths[s];
      if (src->requires_grad) {
        src->EnsureGrad();
        for (int i = 0; i < m; ++i) {
          const float* g =
              self->grad.data() + static_cast<int64_t>(i) * total_cols + col;
          float* dst = src->grad.data() + static_cast<int64_t>(i) * pc;
          for (int j = 0; j < pc; ++j) dst[j] += g[j];
        }
      }
      col += pc;
    }
  });
  return out;
}

Tensor SliceRows(const Tensor& a, int start, int len) {
  RF_CHECK_EQ(a.rank(), 2);
  const int n = a.cols();
  RF_CHECK_GE(start, 0);
  RF_CHECK_LE(start + len, a.rows());
  Tensor out = MakeNode({len, n}, {a.impl()});
  std::copy(a.data() + static_cast<int64_t>(start) * n,
            a.data() + static_cast<int64_t>(start + len) * n, out.data());
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordSlice(plan::GetExecFns().slice_rows,
                                          "slice_rows", a, out, start, len);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, start, len, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t i = 0; i < static_cast<int64_t>(len) * n; ++i) {
      ai->grad[static_cast<int64_t>(start) * n + i] += self->grad[i];
    }
  });
  return out;
}

Tensor SliceCols(const Tensor& a, int start, int len) {
  RF_CHECK_EQ(a.rank(), 2);
  const int m = a.rows(), n = a.cols();
  RF_CHECK_GE(start, 0);
  RF_CHECK_LE(start + len, n);
  Tensor out = MakeNode({m, len}, {a.impl()});
  for (int i = 0; i < m; ++i) {
    std::copy(a.data() + static_cast<int64_t>(i) * n + start,
              a.data() + static_cast<int64_t>(i) * n + start + len,
              out.data() + static_cast<int64_t>(i) * len);
  }
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordSlice(plan::GetExecFns().slice_cols,
                                          "slice_cols", a, out, start, len);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, start, len, m, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < len; ++j) {
        ai->grad[static_cast<int64_t>(i) * n + start + j] +=
            self->grad[static_cast<int64_t>(i) * len + j];
      }
    }
  });
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int>& indices) {
  RF_CHECK_EQ(a.rank(), 2);
  const int n = a.cols();
  const int m = static_cast<int>(indices.size());
  Tensor out = MakeNode({m, n}, {a.impl()});
  for (int i = 0; i < m; ++i) {
    RF_CHECK_GE(indices[i], 0);
    RF_CHECK_LT(indices[i], a.rows());
    std::copy(a.data() + static_cast<int64_t>(indices[i]) * n,
              a.data() + static_cast<int64_t>(indices[i] + 1) * n,
              out.data() + static_cast<int64_t>(i) * n);
  }
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordGather(a, indices, out);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, indices, m, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < m; ++i) {
      const float* g = self->grad.data() + static_cast<int64_t>(i) * n;
      float* dst = ai->grad.data() + static_cast<int64_t>(indices[i]) * n;
      for (int j = 0; j < n; ++j) dst[j] += g[j];
    }
  });
  return out;
}

Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int>& ids) {
  return GatherRows(weight, ids);
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  const int m = x.rows(), n = x.cols();
  RF_CHECK_EQ(gamma.size(), n);
  RF_CHECK_EQ(beta.size(), n);
  Tensor out = MakeNode(x.shape(), {x.impl(), gamma.impl(), beta.impl()});
  std::vector<float> inv_std(m);
  std::vector<float> means(m);
  const int64_t work = static_cast<int64_t>(m) * n;
  opcompute::LayerNormForward(x.data(), gamma.data(), beta.data(), out.data(),
                              m, n, eps, means.data(), inv_std.data());
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordLayerNorm(x, gamma, beta, out, eps);
  }
  TensorImpl* self = out.impl().get();
  auto xi = x.impl(), gi = gamma.impl(), bi = beta.impl();
  SetBackward(&out, [self, xi, gi, bi, m, n, work, means = std::move(means),
                     inv_std = std::move(inv_std)]() {
    // dgamma/dbeta are summed over rows — a shared output. Each worker
    // accumulates into its own buffer; buffers reduce in worker order so
    // the result is deterministic for a fixed thread count.
    const bool need_dgamma = gi->requires_grad;
    const bool need_dbeta = bi->requires_grad;
    const bool need_dx = xi->requires_grad;
    if (need_dgamma) gi->EnsureGrad();
    if (need_dbeta) bi->EnsureGrad();
    if (need_dx) xi->EnsureGrad();
    if (!ShouldParallelize(work, kRowParallelWork)) {
      // Serial path accumulates straight into the shared grad buffers in the
      // legacy row order (bit-identical to the pre-pool kernel).
      for (int64_t i = 0; i < m; ++i) {
        const float* xrow = xi->data_ptr() + i * n;
        const float* dy = self->grad.data() + i * n;
        const float is = inv_std[i];
        const float mean = means[i];
        if (need_dgamma) {
          for (int j = 0; j < n; ++j) {
            gi->grad[j] += dy[j] * (xrow[j] - mean) * is;
          }
        }
        if (need_dbeta) {
          for (int j = 0; j < n; ++j) bi->grad[j] += dy[j];
        }
        if (need_dx) {
          float s1 = 0.0f, s2 = 0.0f;
          for (int j = 0; j < n; ++j) {
            const float gdy = dy[j] * gi->data_ptr()[j];
            const float xhat = (xrow[j] - mean) * is;
            s1 += gdy;
            s2 += gdy * xhat;
          }
          s1 /= n;
          s2 /= n;
          float* dx = xi->grad.data() + i * n;
          for (int j = 0; j < n; ++j) {
            const float gdy = dy[j] * gi->data_ptr()[j];
            const float xhat = (xrow[j] - mean) * is;
            dx[j] += (gdy - s1 - xhat * s2) * is;
          }
        }
      }
      return;
    }
    const int pool_width = ThreadPool::Global().NumThreads();
    std::vector<float> dgamma_parts, dbeta_parts;
    if (need_dgamma) {
      dgamma_parts.assign(static_cast<size_t>(pool_width) * n, 0.0f);
    }
    if (need_dbeta) {
      dbeta_parts.assign(static_cast<size_t>(pool_width) * n, 0.0f);
    }
    ForRows(m, work, kRowParallelWork,
            [&](int worker, int64_t r0, int64_t r1) {
              float* dgamma = need_dgamma
                                  ? dgamma_parts.data() +
                                        static_cast<int64_t>(worker) * n
                                  : nullptr;
              float* dbeta = need_dbeta
                                 ? dbeta_parts.data() +
                                       static_cast<int64_t>(worker) * n
                                 : nullptr;
              for (int64_t i = r0; i < r1; ++i) {
                const float* xrow = xi->data_ptr() + i * n;
                const float* dy = self->grad.data() + i * n;
                const float is = inv_std[i];
                const float mean = means[i];
                if (dgamma != nullptr) {
                  for (int j = 0; j < n; ++j) {
                    dgamma[j] += dy[j] * (xrow[j] - mean) * is;
                  }
                }
                if (dbeta != nullptr) {
                  for (int j = 0; j < n; ++j) dbeta[j] += dy[j];
                }
                if (need_dx) {
                  // dx = (g*dy - mean(g*dy) - xhat*mean(g*dy*xhat)) * inv_std
                  float s1 = 0.0f, s2 = 0.0f;
                  for (int j = 0; j < n; ++j) {
                    const float gdy = dy[j] * gi->data_ptr()[j];
                    const float xhat = (xrow[j] - mean) * is;
                    s1 += gdy;
                    s2 += gdy * xhat;
                  }
                  s1 /= n;
                  s2 /= n;
                  float* dx = xi->grad.data() + i * n;
                  for (int j = 0; j < n; ++j) {
                    const float gdy = dy[j] * gi->data_ptr()[j];
                    const float xhat = (xrow[j] - mean) * is;
                    dx[j] += (gdy - s1 - xhat * s2) * is;
                  }
                }
              }
            });
    for (int w = 0; w < pool_width; ++w) {
      if (need_dgamma) {
        const float* part = dgamma_parts.data() + static_cast<int64_t>(w) * n;
        for (int j = 0; j < n; ++j) gi->grad[j] += part[j];
      }
      if (need_dbeta) {
        const float* part = dbeta_parts.data() + static_cast<int64_t>(w) * n;
        for (int j = 0; j < n; ++j) bi->grad[j] += part[j];
      }
    }
  });
  return out;
}

Tensor Dropout(const Tensor& x, float p, Rng* rng, bool training) {
  if (!training || p <= 0.0f) return x;
  RF_CHECK_LT(p, 1.0f);
  const int64_t n = x.size();
  std::vector<float> mask(n);
  const float keep = 1.0f - p;
  for (int64_t i = 0; i < n; ++i) {
    mask[i] = rng->Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  Tensor out = MakeNode(x.shape(), {x.impl()});
  for (int64_t i = 0; i < n; ++i) out.data()[i] = x.data()[i] * mask[i];
  TensorImpl* self = out.impl().get();
  auto xi = x.impl();
  SetBackward(&out, [self, xi, n, mask = std::move(mask)]() {
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    for (int64_t i = 0; i < n; ++i) xi->grad[i] += self->grad[i] * mask[i];
  });
  return out;
}

Tensor L2NormalizeRows(const Tensor& a, float eps) {
  const int m = a.rows(), n = a.cols();
  Tensor out = MakeNode(a.shape(), {a.impl()});
  std::vector<float> inv_norm(m);
  opcompute::L2NormalizeForward(a.data(), out.data(), m, n, eps,
                                inv_norm.data());
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordUnary(plan::GetExecFns().l2_normalize,
                                          "l2_normalize", a, out, eps);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  SetBackward(&out, [self, ai, m, n, inv_norm = std::move(inv_norm)]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < m; ++i) {
      const float* y = self->data_ptr() + static_cast<int64_t>(i) * n;
      const float* dy = self->grad.data() + static_cast<int64_t>(i) * n;
      float* dx = ai->grad.data() + static_cast<int64_t>(i) * n;
      float dot = 0.0f;
      for (int j = 0; j < n; ++j) dot += dy[j] * y[j];
      for (int j = 0; j < n; ++j) {
        dx[j] += (dy[j] - y[j] * dot) * inv_norm[i];
      }
    }
  });
  return out;
}

Tensor Reshape(const Tensor& a, std::vector<int> shape) {
  int64_t prod = 1;
  for (int d : shape) prod *= d;
  RF_CHECK_EQ(prod, a.size());
  Tensor out = MakeNode(shape, {a.impl()});
  std::copy(a.data(), a.data() + a.size(), out.data());
  if (plan::RecordingActive()) {
    plan::Recorder::Active()->RecordUnary(plan::GetExecFns().reshape, "reshape",
                                          a, out);
  }
  TensorImpl* self = out.impl().get();
  auto ai = a.impl();
  const int64_t n = a.size();
  SetBackward(&out, [self, ai, n]() {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t i = 0; i < n; ++i) ai->grad[i] += self->grad[i];
  });
  return out;
}

}  // namespace ops
}  // namespace resuformer
