#ifndef RESUFORMER_TENSOR_ARENA_H_
#define RESUFORMER_TENSOR_ARENA_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/metrics.h"

namespace resuformer {

/// \brief Process-wide recycling arena for tensor storage.
///
/// Every op output allocates a fresh std::vector<float>; inside an encoder
/// forward that is thousands of short-lived heap round-trips per document.
/// The arena turns them into free-list hits: Acquire(n) hands out a
/// zero-filled vector of size n whose capacity comes from a power-of-two
/// size-class free list, and Release(...) parks a dead buffer for reuse
/// instead of freeing it.
///
/// Ownership rules:
///  * The arena never owns live data — Acquire transfers the buffer to the
///    caller (normally a TensorImpl), Release transfers it back. In between
///    the buffer is a plain std::vector<float> with value semantics.
///  * Buffers are keyed by the largest power-of-two <= capacity, so a
///    released buffer whose capacity is not itself a size class (e.g. one
///    adopted from Tensor::FromData) still serves any request it can hold.
///  * Requests larger than the maximum size class bypass the free lists
///    (plain allocation, counted as a miss); tiny buffers below the minimum
///    class are not worth caching and are dropped on release.
///  * The cache is bounded: once cached_bytes exceeds the budget, released
///    buffers are freed instead of parked.
///
/// Thread safety: all public methods are safe to call concurrently (one
/// mutex; the arena is only touched at tensor construction/destruction,
/// never inside kernels).
class TensorArena {
 public:
  /// Process-wide arena used by Tensor factories. Intentionally leaked so
  /// tensors destroyed during static teardown can still release safely.
  static TensorArena& Global();

  /// Counters since the last ResetStats(). `outstanding` tracks buffers
  /// currently held by live tensors (Acquire minus Release of acquired
  /// buffers) — zero once every tensor from an arena-enabled run is gone.
  /// The values live on the process MetricsRegistry ("arena.hits",
  /// "arena.misses", "arena.bytes_recycled" counters; "arena.outstanding",
  /// "arena.cached_bytes" gauges), so metrics snapshots and this struct
  /// always agree; stats() just reads them back.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t outstanding = 0;
    int64_t bytes_recycled = 0;  // bytes served from the free lists
    int64_t cached_bytes = 0;    // bytes currently parked
  };

  /// Hit/miss tallies of the *calling thread* since thread start (never
  /// reset; diff two reads to scope a window). A pipeline parse runs
  /// entirely on one thread, so diffing around it isolates that document's
  /// arena traffic even while other workers allocate concurrently — the
  /// process-wide Stats counters cannot make that distinction.
  struct ThreadStats {
    int64_t hits = 0;
    int64_t misses = 0;
  };
  static ThreadStats thread_stats();

  /// Enables/disables recycling. Disabled, Acquire degrades to a plain
  /// zero-filled allocation (still counted as a miss) and Release frees.
  void SetEnabled(bool enabled);
  bool enabled() const;

  /// Zero-filled vector of size n (capacity >= n). `from_arena` (optional)
  /// reports whether the buffer must be returned via Release(..., true)
  /// for the outstanding count to balance.
  [[nodiscard]] std::vector<float> Acquire(int64_t n, bool* from_arena = nullptr);

  /// Returns a buffer to the free lists (or frees it when disabled / over
  /// budget / below the minimum class). `was_acquired` must be the value
  /// reported by Acquire for this buffer; foreign buffers pass false and
  /// are still recycled, they just never touched the outstanding count.
  void Release(std::vector<float>&& buffer, bool was_acquired);

  Stats stats() const;
  void ResetStats();

  /// Frees every cached buffer (outstanding buffers are unaffected).
  void Clear();

  /// Cache budget in bytes; releases beyond it are freed. Default 256 MiB.
  void SetBudgetBytes(int64_t bytes);

 private:
  TensorArena();

  // Size classes are powers of two from 2^6 to 2^24 floats.
  static constexpr int kMinClassLog2 = 6;
  static constexpr int kMaxClassLog2 = 24;
  static constexpr int kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;

  mutable std::mutex mu_;
  bool enabled_ = true;
  int64_t budget_bytes_ = 256LL << 20;
  std::vector<std::vector<float>> free_lists_[kNumClasses];

  // Registry-backed instruments (see Stats). Updated under mu_ alongside
  // the free lists; reads are lock-free for metric snapshots.
  metrics::Counter* hits_;
  metrics::Counter* misses_;
  metrics::Counter* bytes_recycled_;
  metrics::Gauge* outstanding_;
  metrics::Gauge* cached_bytes_;
};

/// \brief RAII scratch buffer drawn from the arena.
///
/// For op-internal workspaces (attention probabilities, backward scratch)
/// that never become tensors: acquires on construction, releases on
/// destruction. Movable so it can be captured into backward closures.
class ArenaBuffer {
 public:
  explicit ArenaBuffer(int64_t n);
  ~ArenaBuffer();
  ArenaBuffer(ArenaBuffer&& other) noexcept;
  ArenaBuffer& operator=(ArenaBuffer&& other) noexcept;
  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;

  float* data() { return buffer_.data(); }
  const float* data() const { return buffer_.data(); }
  int64_t size() const { return static_cast<int64_t>(buffer_.size()); }

 private:
  std::vector<float> buffer_;
  bool from_arena_ = false;
};

}  // namespace resuformer

#endif  // RESUFORMER_TENSOR_ARENA_H_
