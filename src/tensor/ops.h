#ifndef RESUFORMER_TENSOR_OPS_H_
#define RESUFORMER_TENSOR_OPS_H_

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace resuformer {
namespace ops {

/// Matrix product [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A * B^T for A [m,k], B [n,k] -> [m,n], without materializing the
/// transpose. Bit-identical to MatMul(a, Transpose(b)) at any thread count.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// C = A^T * B for A [k,m], B [k,n] -> [m,n], without materializing the
/// transpose. Bit-identical to MatMul(Transpose(a), b) at any thread count.
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor Transpose(const Tensor& a);

/// Elementwise sum. If `b` is rank-1 with b.size() == a.cols(), it is
/// broadcast over the rows of `a` (bias addition).
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise difference (same broadcast rule as Add).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise product of same-shape tensors.
Tensor Mul(const Tensor& a, const Tensor& b);

/// Multiplication by a constant.
Tensor Scale(const Tensor& a, float s);

/// Addition of a constant to every element.
Tensor AddScalar(const Tensor& a, float s);

/// Elementwise activations.
Tensor Relu(const Tensor& a);
Tensor Gelu(const Tensor& a);  // tanh approximation
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);

/// Row-wise softmax / log-softmax over the last dimension.
Tensor Softmax(const Tensor& a);
Tensor LogSoftmax(const Tensor& a);

/// Fused softmax(a * scale + bias) in one pass over the rows. `bias` is
/// optional (undefined Tensor): same shape as `a`, or rank-1 of size
/// a.cols() broadcast over rows. Bit-identical to the composed
/// Softmax(Add(Scale(a, scale), bias)) at any thread count.
Tensor ScaleAddSoftmax(const Tensor& a, float scale,
                       const Tensor& bias = Tensor());

/// Fused multi-head scaled-dot-product self-attention core:
/// q/k/v are [T, dim] with dim = num_heads * head_dim (heads are column
/// blocks); returns concat_h(softmax(Qh Kh^T / sqrt(head_dim) + bias) Vh)
/// as [T, dim]. `bias` (optional, [T, T]) is shared across heads. Operates
/// on strided head views — no per-head slice/transpose/concat copies — and
/// differentiates through q, k, v and bias. Results are deterministic and
/// bit-identical across thread counts; against the composed per-head
/// reference they agree within 1e-5 relative on forward and backward (the
/// score reductions use the SIMD-reassociated kernels::GemmNTVec).
Tensor FusedMultiHeadAttention(const Tensor& q, const Tensor& k,
                               const Tensor& v, const Tensor& bias,
                               int num_heads);

/// Mean negative log-likelihood of `targets` under row-wise softmax of
/// `logits` [m, n]. Rows whose target equals `ignore_index` contribute
/// nothing. Returns a scalar.
Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets,
                    int ignore_index = -1);

/// Mean over rows of -sum_c soft_targets[r,c] * log_softmax(logits)[r,c],
/// optionally weighting each row (used by the self-distillation KL loss,
/// Eq. 10/12 — the entropy of the soft target is constant w.r.t. the
/// student, so minimizing this cross-entropy minimizes the KL divergence).
/// Rows with weight 0 are excluded from the normalizer.
Tensor SoftCrossEntropy(const Tensor& logits, const Tensor& soft_targets,
                        const std::vector<float>& row_weights = {});

/// Scalar mean / sum of all elements.
Tensor Mean(const Tensor& a);
Tensor Sum(const Tensor& a);

/// Stacks parts along rows; rank-1 parts are treated as single rows.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Concatenates parts along columns; all parts must share the row count.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Row / column slices of a rank-2 tensor.
Tensor SliceRows(const Tensor& a, int start, int len);
Tensor SliceCols(const Tensor& a, int start, int len);

/// Gathers the given rows (duplicates allowed); backward scatter-adds.
Tensor GatherRows(const Tensor& a, const std::vector<int>& indices);

/// Embedding lookup: rows of `weight` [V, D] selected by token ids.
Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int>& ids);

/// Row-wise layer normalization with learned gain/bias (rank-1, size cols).
Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps = 1e-5f);

/// Inverted dropout; identity when !training or p == 0.
Tensor Dropout(const Tensor& x, float p, Rng* rng, bool training);

/// Rows scaled to unit L2 norm (used for sentence representations before
/// the contrastive objective).
Tensor L2NormalizeRows(const Tensor& a, float eps = 1e-8f);

/// View with a new shape (same element count).
Tensor Reshape(const Tensor& a, std::vector<int> shape);

}  // namespace ops
}  // namespace resuformer

#endif  // RESUFORMER_TENSOR_OPS_H_
