#include "tensor/quant.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/metrics.h"
#include "tensor/kernels.h"
#include "tensor/op_compute.h"

namespace resuformer {
namespace quant {

namespace {

struct QuantMetrics {
  metrics::Counter* weights_quantized;
  metrics::Counter* dynamic_quants;
};

QuantMetrics& Metrics() {
  static QuantMetrics m = [] {
    auto& reg = metrics::MetricsRegistry::Global();
    return QuantMetrics{reg.GetCounter("quant.weights_quantized"),
                        reg.GetCounter("quant.dynamic_quants")};
  }();
  return m;
}

/// Saturating round-half-away-from-zero to [-127, 127]. std::lround is
/// exactly this rounding mode; the clamp makes values at max|x| (which
/// round to +/-127 by construction) and any future out-of-range input safe.
inline int8_t SaturateRound(float scaled) {
  const long r = std::lround(scaled);
  return static_cast<int8_t>(std::min(127L, std::max(-127L, r)));
}

}  // namespace

float ComputeScale(const float* x, int64_t n) {
  float amax = 0.0f;
  for (int64_t i = 0; i < n; ++i) amax = std::max(amax, std::fabs(x[i]));
  return amax / 127.0f;
}

void Quantize(const float* x, int64_t n, float scale, int8_t* out) {
  RF_DCHECK_GT(scale, 0.0f);
  const float inv = 1.0f / scale;
  for (int64_t i = 0; i < n; ++i) out[i] = SaturateRound(x[i] * inv);
}

void Dequantize(const int8_t* q, int64_t n, float scale, float* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(q[i]) * scale;
  }
}

QuantizedTensor QuantizeTransposed(const float* w, int k, int n) {
  QuantizedTensor qt;
  qt.rows = n;
  qt.cols = k;
  qt.scale = ComputeScale(w, static_cast<int64_t>(k) * n);
  qt.data.assign(static_cast<size_t>(k) * n, 0);
  if (qt.scale == 0.0f) return qt;
  const float inv = 1.0f / qt.scale;
  for (int t = 0; t < k; ++t) {
    const float* wrow = w + static_cast<int64_t>(t) * n;
    for (int j = 0; j < n; ++j) {
      qt.data[static_cast<int64_t>(j) * k + t] = SaturateRound(wrow[j] * inv);
    }
  }
  Metrics().weights_quantized->Increment();
  return qt;
}

QuantizedTensor QuantizeRows(const float* w, int rows, int cols) {
  QuantizedTensor qt;
  qt.rows = rows;
  qt.cols = cols;
  const int64_t n = static_cast<int64_t>(rows) * cols;
  qt.scale = ComputeScale(w, n);
  qt.data.assign(static_cast<size_t>(n), 0);
  if (qt.scale != 0.0f) {
    Quantize(w, n, qt.scale, qt.data.data());
    Metrics().weights_quantized->Increment();
  }
  return qt;
}

int64_t LinearI8ScratchFloats(int m, int k, int n) {
  const int64_t acc_floats = static_cast<int64_t>(m) * n;
  const int64_t qa_floats = (static_cast<int64_t>(m) * k + 3) / 4;
  return acc_floats + qa_floats;
}

void LinearI8Forward(const float* a, const QuantizedTensor& w, float* c,
                     int m, int k, int n, float* scratch) {
  RF_DCHECK_EQ(w.rows, n);
  RF_DCHECK_EQ(w.cols, k);
  RF_DCHECK_LE(k, kMaxI8ReduceDim);
  const int64_t out_elems = static_cast<int64_t>(m) * n;
  const float sa = ComputeScale(a, static_cast<int64_t>(m) * k);
  if (sa == 0.0f || w.scale == 0.0f) {
    // One operand is exactly zero, so the product is exactly zero. (Unlike
    // the fp32 kernels there is no NaN to propagate: quantization already
    // collapsed non-finite values.)
    std::fill(c, c + out_elems, 0.0f);
    return;
  }
  Metrics().dynamic_quants->Increment();
  // Workspace layout: the int32 accumulator block first (float-aligned is
  // int32-aligned), then the int8 activations packed 4 per float. The casts
  // below are the reason this TU is on rf_lint rule 11's allow-list.
  int32_t* c32 = reinterpret_cast<int32_t*>(scratch);
  int8_t* qa = reinterpret_cast<int8_t*>(scratch + out_elems);
  const float dq = sa * w.scale;
  const float inv_sa = 1.0f / sa;
  // One fork for quantize + GEMM + dequantize: a worker's rows [r0, r1)
  // touch only A rows [r0, r1) and C rows [r0, r1), so no cross-worker
  // dependency exists once sa is fixed — and integer accumulation makes the
  // result exact (identical) at any thread count or partition.
  const int64_t work = static_cast<int64_t>(m) * k * n;
  opcompute::ForRows(
      m, work, opcompute::kGemmParallelWork,
      [&](int /*worker*/, int64_t r0, int64_t r1) {
        for (int64_t i = r0 * k; i < r1 * k; ++i) {
          qa[i] = SaturateRound(a[i] * inv_sa);
        }
        std::fill(c32 + r0 * n, c32 + r1 * n, 0);
        kernels::GemmNTI8(qa, k, w.data.data(), k, c32, n, n, k, r0, r1);
        for (int64_t i = r0 * n; i < r1 * n; ++i) {
          c[i] = static_cast<float>(c32[i]) * dq;
        }
      });
}

}  // namespace quant
}  // namespace resuformer
