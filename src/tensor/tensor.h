#ifndef RESUFORMER_TENSOR_TENSOR_H_
#define RESUFORMER_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace resuformer {

/// Shared storage + autograd metadata behind a Tensor handle.
/// Not part of the public API; use Tensor.
struct TensorImpl {
  ~TensorImpl();  // returns data/grad buffers to the TensorArena

  std::vector<int> shape;
  std::vector<float> data;
  std::vector<float> grad;  // size() elements once EnsureGrad() ran
  bool requires_grad = false;
  // True when `data` was drawn from the TensorArena free lists; balances
  // the arena's outstanding-buffer count on destruction.
  bool data_from_arena = false;

  // External storage mode (mmap'd RFP3 checkpoints): when set, `data` is
  // empty and every element access routes through `external_data`, whose
  // backing memory is pinned by `external_owner` (typically the munmap
  // deleter of a whole checkpoint mapping shared by all parameters). The
  // mapping is MAP_PRIVATE with PROT_READ|PROT_WRITE, so reads share one
  // physical copy across processes and a write (an optimizer step) faults
  // in a private copy-on-write page instead of crashing.
  float* external_data = nullptr;
  std::shared_ptr<void> external_owner;

  float* data_ptr() {
    return external_data != nullptr ? external_data : data.data();
  }
  const float* data_ptr() const {
    return external_data != nullptr ? external_data : data.data();
  }

  // Reverse-mode autograd: when this node was produced by an op, parents
  // holds its inputs and backward_fn accumulates into their grad buffers.
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void()> backward_fn;
  // Set once backward_fn has run; read by the debug graph validator
  // (autograd_internal::ValidateGraph) to reject double backward through
  // closures whose captured scratch may have been recycled.
  bool backward_consumed = false;

  int64_t size() const {
    int64_t n = 1;
    for (int d : shape) n *= d;
    return n;
  }
  void EnsureGrad() {
    if (static_cast<int64_t>(grad.size()) != size()) {
      grad.assign(static_cast<size_t>(size()), 0.0f);
    }
  }
};

/// \brief Row-major float32 tensor with dynamic reverse-mode autograd.
///
/// Tensor is a cheap value-semantics handle (shared_ptr to TensorImpl).
/// Supported ranks are 1 and 2 — everything in this library is expressed as
/// matrices [rows, cols] or vectors [n]. Operations live in tensor/ops.h;
/// calling Backward() on a scalar result propagates gradients to every
/// reachable tensor with requires_grad set.
class Tensor {
 public:
  /// Null handle; defined() is false.
  Tensor() = default;

  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  /// Factory: zero-filled tensor with the given shape.
  [[nodiscard]] static Tensor Zeros(std::vector<int> shape, bool requires_grad = false);

  /// Factory: all elements set to `value`.
  [[nodiscard]] static Tensor Full(std::vector<int> shape, float value,
                     bool requires_grad = false);

  /// Factory: takes ownership of `data` (size must match shape product).
  [[nodiscard]] static Tensor FromData(std::vector<int> shape, std::vector<float> data,
                         bool requires_grad = false);

  /// Factory: i.i.d. Gaussian entries with the given stddev.
  [[nodiscard]] static Tensor Randn(std::vector<int> shape, Rng* rng, float stddev = 1.0f,
                      bool requires_grad = false);

  /// Factory: i.i.d. uniform entries in [lo, hi).
  [[nodiscard]] static Tensor Uniform(std::vector<int> shape, Rng* rng, float lo, float hi,
                        bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }

  const std::vector<int>& shape() const;
  int rank() const;
  /// Dimension extent; dim(0) is rows for rank-2 tensors.
  int dim(int axis) const;
  /// Total number of elements.
  int64_t size() const;
  /// Rows/cols accessors for rank-2 tensors (rank-1 is treated as one row).
  int rows() const;
  int cols() const;

  float* data();
  const float* data() const;
  float* grad();
  const float* grad() const;

  /// Element access for rank-2 (r, c) and rank-1 (i) tensors.
  float& at(int r, int c);
  float at(int r, int c) const;
  float& at(int i);
  float at(int i) const;

  bool requires_grad() const;
  /// Marks this tensor as a leaf that accumulates gradient.
  void set_requires_grad(bool requires_grad);
  void ZeroGrad();

  /// Runs reverse-mode autodiff from this (scalar) tensor: topologically
  /// sorts the graph and invokes each node's backward function.
  void Backward();

  /// Detached copy sharing no autograd history (data is copied).
  [[nodiscard]] Tensor Detach() const;

  /// Switches this tensor to external storage: element data now lives at
  /// `ptr` (size() floats, 4-byte aligned), kept alive by `owner`. The
  /// previous heap buffer is returned to the arena. Used by the RFP3
  /// mmap loader to point parameters at checkpoint pages (zero-copy).
  void AttachExternalStorage(float* ptr, std::shared_ptr<void> owner);

  /// True when this tensor's elements live in external (mmap'd) storage.
  bool has_external_storage() const;

  /// Scalar value of a 1-element tensor.
  float item() const;

  std::string ShapeString() const;

  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// RAII guard disabling graph construction (inference mode). While one is
/// alive, ops produce tensors with no parents/backward_fn, which keeps
/// evaluation fast and memory flat.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  /// True when graph construction is currently enabled.
  static bool GradEnabled();

 private:
  bool previous_;
};

}  // namespace resuformer

#endif  // RESUFORMER_TENSOR_TENSOR_H_
