#ifndef RESUFORMER_TENSOR_PLAN_H_
#define RESUFORMER_TENSOR_PLAN_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace resuformer {
namespace quant {
struct QuantizedTensor;
}  // namespace quant
namespace plan {

/// \brief Static inference plans: trace a forward pass once, replay it per
/// document with zero tape construction, zero shape inference and zero
/// allocator misses.
///
/// The layer follows the graph-executor/interpreter split: a thread-local
/// `Recorder` observes one representative forward pass (every supported op
/// in tensor/ops.cc appends an instruction when a recorder is active) and
/// `Recorder::Finish` flattens the capture into an immutable `Plan` — an
/// ordered instruction list whose kernels are pre-resolved function
/// pointers, whose buffer shapes are pre-computed, and whose temporaries
/// are pre-assigned offsets in one workspace buffer sized by last-use
/// liveness analysis. `PlanExecutor::Run` replays the plan against fresh
/// inputs (a `BindingSet`).
///
/// Safety contract: an op with no recording hook still calls
/// `plan::NoteNode()` from the shared node factory, so the recorder's node
/// count outruns its instruction count and `Finish` returns nullptr instead
/// of a silently incomplete plan. Callers treat a null plan as "use the
/// dynamic path".
///
/// Determinism contract: the executor calls the exact opcompute:: loops the
/// dynamic ops call, zeroing each output slot first just as Tensor::Zeros
/// does, so a replay is bit-identical to the dynamic forward at any fixed
/// thread count.
///
/// Thread safety: plans are immutable after Finish and hold no mutable
/// state; any number of threads may Run the same plan concurrently (each
/// Run draws its own workspace from the TensorArena). Recorders are
/// thread-local and must not outlive their thread.

// Binding roles: the replay-variable inputs of a plan. Index roles feed
// GatherRows instructions (embedding lookups); tensor roles feed whole
// input matrices.
inline constexpr int kRoleTokenIds = 0;    // index: token ids incl. CLS
inline constexpr int kRoleLayout0 = 1;     // index: layout feature f buckets
                                           // (roles 1..7 = features 0..6)
inline constexpr int kRoleHiddenInput = 8;  // tensor: [m, D] sentence reprs
inline constexpr int kRoleVisualInput = 9;  // tensor: [m, visual] features
inline constexpr int kNumRoles = 10;
inline constexpr int kNumLayoutFeatures = 7;

/// One SSA value of a plan: a model constant (weights, literal index
/// embeddings' sources, initial LSTM states), a per-replay binding, or a
/// temporary at a pre-assigned workspace offset.
struct Value {
  enum Kind { kConstant, kBinding, kTemp };
  Kind kind = kTemp;
  int rows = 0;
  int cols = 0;
  int64_t size = 0;
  /// kConstant: keeps the traced storage alive for the plan's lifetime.
  std::shared_ptr<TensorImpl> constant;
  /// kBinding: which BindingSet tensor slot supplies the data.
  int role = -1;
  /// kTemp: float offset of this value's slot in the workspace.
  int64_t offset = -1;
};

struct Instr;
struct ExecContext;
/// Pre-resolved kernel entry: every instruction dispatches through one raw
/// function pointer, no virtual calls and no shape inference at replay.
using ExecFn = void (*)(const Instr&, ExecContext&);

struct Instr {
  ExecFn exec = nullptr;
  const char* name = "";  // op mnemonic, for diagnostics
  int in0 = -1, in1 = -1, in2 = -1;  // value ids; -1 = absent
  std::vector<int> extra_in;         // concat tails (inputs beyond in0..in2)
  int out = -1;
  float alpha = 0.0f;         // scale / eps / sign, op-dependent
  int p0 = 0, p1 = 0, p2 = 0; // op-dependent ints (dims, slice start/len)
  bool flag = false;          // broadcast, op-dependent
  std::vector<int> indices;   // literal gather indices
  int index_role = -1;        // gather indices come from the BindingSet
  int64_t scratch_offset = -1;  // attention prob slab / int8 quant scratch
  int64_t scratch_size = 0;
  /// Int8 rewrite (Recorder::Finish with EnableInt8): the constant operand
  /// quantized once at plan-build time, in NT layout [out, in]. The fp32
  /// constant stays referenced through in1 (it is the module's own weight
  /// storage, alive regardless), but the replay never reads it.
  std::shared_ptr<const quant::QuantizedTensor> qweight;
};

/// Immutable replayable program. Never mutated after Finish; safe to share
/// across threads by shared_ptr<const Plan>.
struct Plan {
  std::vector<Value> values;
  std::vector<Instr> instrs;
  int output = -1;             // value id of the traced output
  int64_t output_size = 0;
  int output_rows = 0;
  int output_cols = 0;
  int64_t workspace_floats = 0;
  /// Binding requirements recorded at trace time; Run validates the
  /// BindingSet against them before touching any kernel.
  struct RoleReq {
    int role = -1;
    int64_t size = 0;  // index count (index roles) or float count (tensors)
  };
  std::vector<RoleReq> index_roles;
  std::vector<RoleReq> tensor_roles;
};

/// Per-replay inputs. Pointers are borrowed for the duration of Run.
struct BindingSet {
  const std::vector<int>* indices[kNumRoles] = {};
  const float* tensors[kNumRoles] = {};
  int64_t tensor_sizes[kNumRoles] = {};
};

struct ExecContext {
  const Plan* plan = nullptr;
  const BindingSet* bindings = nullptr;
  float* workspace = nullptr;
  /// Resolved base pointer per value id (constant storage, binding pointer,
  /// or workspace slot), filled once at the top of Run. Points at a
  /// thread-local table owned by Run: replays reuse its capacity, so the
  /// steady state performs no per-call allocation here.
  const std::vector<float*>* ptrs = nullptr;
  bool failed = false;  // set by an instruction on a binding mismatch
};

/// \brief Thread-local trace recorder.
///
/// Construct one, run a representative forward under NoGradGuard, then call
/// Finish(output). While alive, every supported ops:: call on this thread
/// appends an instruction. At most one recorder per thread; nesting aborts.
class Recorder {
 public:
  Recorder();
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// The active recorder on this thread, or nullptr.
  static Recorder* Active();

  /// Declares `t` a per-replay tensor input under `role` (kRoleHiddenInput /
  /// kRoleVisualInput). Must be called before the traced forward reads it.
  void BindInputTensor(int role, const Tensor& t);

  /// The next GatherRows recorded on this thread takes its indices from
  /// `role` at replay instead of baking in the traced literals.
  void AnnotateNextGather(int role);

  /// Makes Finish() rewrite every GEMM whose B operand is a plan constant
  /// (Linear layers, attention projections, LSTM gates) to the int8 kernel:
  /// the weight is quantized per-tensor once at plan-build time and cached
  /// in the instruction; activations are quantized dynamically per replay.
  /// Must be called before the traced forward runs. Replays are then NOT
  /// bit-identical to the fp32 path (see the tier-1 accuracy gate), but
  /// remain deterministic at any thread count.
  void EnableInt8() { int8_enabled_ = true; }

  /// Flattens the capture into an immutable plan. Returns nullptr when the
  /// trace is unusable: an unsupported op ran (node/instruction count
  /// mismatch), a structural check failed, or `output` was never recorded.
  std::shared_ptr<const Plan> Finish(const Tensor& output);

  // -- Hooks called by tensor/ops.cc (no-ops when poisoned). --
  void NoteNode() { ++node_count_; }
  void Poison() { poisoned_ = true; }
  bool poisoned() const { return poisoned_; }

  void RecordUnary(ExecFn fn, const char* name, const Tensor& a,
                   const Tensor& out, float alpha = 0.0f);
  void RecordBinary(ExecFn fn, const char* name, const Tensor& a,
                    const Tensor& b, const Tensor& out, float alpha = 0.0f,
                    bool flag = false);
  void RecordGemm(ExecFn fn, const char* name, const Tensor& a,
                  const Tensor& b, const Tensor& out, int m, int k, int n);
  void RecordScaleAddSoftmax(const Tensor& a, const Tensor& bias,
                             const Tensor& out, float scale,
                             bool bias_broadcast);
  void RecordFusedAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                            const Tensor& bias, const Tensor& out, int t_len,
                            int dim, int num_heads);
  void RecordConcat(ExecFn fn, const char* name,
                    const std::vector<Tensor>& parts, const Tensor& out);
  void RecordSlice(ExecFn fn, const char* name, const Tensor& a,
                   const Tensor& out, int start, int len);
  void RecordGather(const Tensor& a, const std::vector<int>& indices,
                    const Tensor& out);
  void RecordLayerNorm(const Tensor& x, const Tensor& gamma,
                       const Tensor& beta, const Tensor& out, float eps);

 private:
  /// Value id for a traced tensor: a previously recorded output, a bound
  /// input, or (first sighting) a new constant whose storage is kept alive.
  int ValueIdFor(const Tensor& t);
  int RegisterOutput(const Tensor& out);
  Instr& Append(ExecFn fn, const char* name);

  /// Rewrites eligible GEMM instructions to int8 (called from Finish when
  /// int8 is enabled, before liveness analysis assigns scratch offsets).
  void RewriteGemmsToInt8();

  bool poisoned_ = false;
  bool int8_enabled_ = false;
  int64_t node_count_ = 0;
  int64_t instr_count_ = 0;
  int pending_gather_role_ = -1;
  std::vector<Value> values_;
  std::vector<Instr> instrs_;
  // Raw impl pointer -> value id. The shared_ptr keepalives (inside
  // values_[].constant and keepalive_) pin every traced impl so a freed
  // temporary's address can never be recycled into a false match.
  std::unordered_map<const TensorImpl*, int> ids_;
  std::vector<std::shared_ptr<TensorImpl>> keepalive_;
};

/// True when a recorder is active on this thread (cheap TLS read; ops.cc
/// guards its hook calls with this).
inline bool RecordingActive() { return Recorder::Active() != nullptr; }

/// Hook for ops.cc's MakeNode: counts nodes against recorded instructions
/// so unsupported ops poison the trace instead of silently vanishing.
inline void NoteNode() {
  if (Recorder* r = Recorder::Active()) r->NoteNode();
}

/// Convenience forward of Recorder::AnnotateNextGather for capture points
/// (encoder code) that do not hold the recorder. No-op when inactive.
inline void AnnotateNextGather(int role) {
  if (Recorder* r = Recorder::Active()) r->AnnotateNextGather(role);
}

class PlanExecutor {
 public:
  /// Replays `plan` against `bindings`, writing the plan output (row-major,
  /// plan.output_size floats) into `out`. Returns false — without touching
  /// `out` — when the bindings fail validation (missing role, wrong index
  /// count or tensor size, index out of range). The workspace is one
  /// TensorArena buffer acquired per call, so steady-state replay allocates
  /// nothing new.
  static bool Run(const Plan& plan, const BindingSet& bindings, float* out);
};

// Exec functions are internal to plan.cc; ops.cc obtains them through these
// resolver handles so the hook sites stay one-liners.
struct ExecFns {
  ExecFn matmul_nn, matmul_nt, matmul_tn, transpose;
  ExecFn add_sub, mul, scale, add_scalar;
  ExecFn relu, gelu, tanh, sigmoid;
  ExecFn softmax, log_softmax;
  ExecFn concat_rows, concat_cols, slice_rows, slice_cols;
  ExecFn reshape, l2_normalize;
};
const ExecFns& GetExecFns();

}  // namespace plan
}  // namespace resuformer

#endif  // RESUFORMER_TENSOR_PLAN_H_
