#ifndef RESUFORMER_TENSOR_KERNELS_H_
#define RESUFORMER_TENSOR_KERNELS_H_

#include <cstdint>

namespace resuformer {
namespace kernels {

// ---------------------------------------------------------------------------
// Raw strided GEMM micro-kernels shared by the tensor ops and the fused
// attention path. All kernels ACCUMULATE into C (callers zero-fill first),
// take explicit leading dimensions (row strides), and restrict their writes
// to output rows [r0, r1) so callers can partition work across the thread
// pool without any two workers sharing an output element.
//
// Except where noted (GemmNTVec), every kernel visits the reduction index in
// ascending order for each output element, matching the accumulation order
// of the ops.cc reference GEMM — which is what keeps the transposed-GEMM ops
// bit-identical to the composed ops they replace.
// ---------------------------------------------------------------------------

/// C[i, j] += sum_t A[i, t] * B[j, t] for i in [r0, r1), j in [0, bn).
/// A is [*, d] with row stride lda, B is [bn, d] with row stride ldb,
/// C has row stride ldc. This is C += A * B^T without materializing B^T.
void GemmNT(const float* a, int lda, const float* b, int ldb, float* c,
            int ldc, int bn, int d, int64_t r0, int64_t r1);

/// C[i, j] += sum_t A[i, t] * B[t, j] for i in [r0, r1), j in [0, bn).
/// A is [*, d] with row stride lda, B is [d, bn] with row stride ldb.
/// Cache-tiled over (t, j) like the ops.cc blocked GEMM; tiles ascend, so
/// each element still accumulates t in ascending order.
void GemmNN(const float* a, int lda, const float* b, int ldb, float* c,
            int ldc, int d, int bn, int64_t r0, int64_t r1);

/// C[i, j] += sum_t A[t, i] * B[t, j] for i in [r0, r1), j in [0, bn).
/// A is [d, *] with row stride lda, B is [d, bn] with row stride ldb.
/// This is C += A^T * B restricted to C rows [r0, r1); the t loop stays
/// outermost so accumulation order is ascending t.
void GemmTN(const float* a, int lda, const float* b, int ldb, float* c,
            int ldc, int d, int bn, int64_t r0, int64_t r1);

/// Same contract as GemmNT, but the per-element reduction over t runs as a
/// SIMD-reassociated dot product (16 partial lanes, fixed-shape final
/// reduction): deterministic for given inputs, within ~1e-6 relative of the
/// serial ascending-t order, but NOT bit-identical to it. Used by the fused
/// attention path, where the contract is 1e-5 closeness to the composed
/// reference rather than bit-identity.
void GemmNTVec(const float* a, int lda, const float* b, int ldb, float* c,
               int ldc, int bn, int d, int64_t r0, int64_t r1);

// -- Int8 GEMM variants (tensor/quant.h provides the scales). ---------------
//
// Same stride/row-range contract as the fp32 kernels above: ACCUMULATE into
// C, explicit leading dimensions, writes restricted to rows [r0, r1).
// Accumulation is int32 (exact for d <= quant::kMaxI8ReduceDim), so unlike
// the fp32 family these kernels are free to reassociate: integer addition
// is associative and the result is bit-exact regardless of lane order.

/// C[i, j] += sum_t A[i, t] * B[j, t] (int8 operands, int32 accumulation).
/// A is [*, d] with row stride lda, B is [bn, d] with row stride ldb.
void GemmNTI8(const int8_t* a, int lda, const int8_t* b, int ldb, int32_t* c,
              int ldc, int bn, int d, int64_t r0, int64_t r1);

/// C[i, j] += sum_t A[i, t] * B[t, j]. A is [*, d], B is [d, bn].
void GemmNNI8(const int8_t* a, int lda, const int8_t* b, int ldb, int32_t* c,
              int ldc, int d, int bn, int64_t r0, int64_t r1);

/// C[i, j] += sum_t A[t, i] * B[t, j]. A is [d, *], B is [d, bn].
void GemmTNI8(const int8_t* a, int lda, const int8_t* b, int ldb, int32_t* c,
              int ldc, int d, int bn, int64_t r0, int64_t r1);

/// In-place fused row kernel: row[j] = softmax(row[j] * scale + bias[j])
/// with the usual max-subtraction. `bias` may be null (no addition). The
/// op sequence per element (multiply, add, max/exp/sum/divide) matches the
/// composed Scale -> Add -> Softmax ops exactly.
void ScaleAddSoftmaxRow(float* row, const float* bias, int n, float scale);

/// Softmax backward for one row: dx[j] += (dy[j] - dot(dy, y)) * y[j].
/// When `out_overwrite` is true the result is written (not accumulated)
/// into dx, which lets callers reuse a dy buffer as scratch.
void SoftmaxBackwardRow(const float* y, const float* dy, float* dx, int n,
                        bool out_overwrite);

}  // namespace kernels
}  // namespace resuformer

#endif  // RESUFORMER_TENSOR_KERNELS_H_
