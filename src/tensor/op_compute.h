#ifndef RESUFORMER_TENSOR_OP_COMPUTE_H_
#define RESUFORMER_TENSOR_OP_COMPUTE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/thread_pool.h"
#include "tensor/kernels.h"

namespace resuformer {
namespace opcompute {

// ---------------------------------------------------------------------------
// Shared forward-compute substrate.
//
// Every loop in this header is the single definition of its op's forward
// arithmetic: the autograd ops (tensor/ops.cc) and the static-plan executor
// (tensor/plan.cc) both call these functions, which is what makes plan
// replay bit-identical to the dynamic path — same kernels, same parallel
// partitioning thresholds, same per-element accumulation order. Keep any
// change to a loop here in sync with nothing: there is no second copy.
//
// Parallelism contract (inherited from the original ops.cc substrate):
// partitions are over output rows, chunk boundaries depend only on
// (count, NumThreads()), and per-element accumulation order never changes
// with the thread count.
// ---------------------------------------------------------------------------

// Minimum multiply-accumulate count (m*k*n) before a GEMM goes parallel.
inline constexpr int64_t kGemmParallelWork = 1 << 16;
// Minimum element count before row-wise ops (softmax/layernorm/losses) and
// elementwise ops go parallel.
inline constexpr int64_t kRowParallelWork = 1 << 14;
inline constexpr int64_t kElemwiseParallelWork = 1 << 15;

inline bool ShouldParallelize(int64_t work, int64_t threshold) {
  return work >= threshold && ThreadPool::Global().NumThreads() > 1;
}

/// Runs fn(worker, row_begin, row_end) over [0, rows), parallel when `work`
/// crosses `threshold`, inline otherwise.
template <typename Fn>
void ForRows(int64_t rows, int64_t work, int64_t threshold, Fn&& fn) {
  if (ShouldParallelize(work, threshold)) {
    ThreadPool::Global().ParallelFor(
        rows,
        [&fn](int worker, int64_t begin, int64_t end) { fn(worker, begin, end); });
  } else {
    fn(0, 0, rows);
  }
}

/// Runs fn(begin, end) over [0, n), chunked across the pool for large n.
template <typename Fn>
void ForElems(int64_t n, Fn&& fn) {
  if (ShouldParallelize(n, kElemwiseParallelWork)) {
    ThreadPool::Global().ParallelFor(
        n, [&fn](int /*worker*/, int64_t begin, int64_t end) { fn(begin, end); });
  } else {
    fn(0, n);
  }
}

// Cache tile sizes for the blocked GEMM: a KB x JB tile of B (~16 KiB) stays
// L1-resident while successive A rows stream over it.
inline constexpr int kGemmKB = 32;
inline constexpr int kGemmJB = 128;

/// C[r0:r1, :] += A[r0:r1, :] * B for row-major A[m,k], B[k,n], C[m,n].
/// k-tiles are visited in ascending order, so each C element accumulates its
/// k products in the same order as the naive ikj loop (bit-identical).
inline void GemmAccRows(const float* a, const float* b, float* c, int k, int n,
                        int64_t r0, int64_t r1) {
  for (int kk0 = 0; kk0 < k; kk0 += kGemmKB) {
    const int kk1 = std::min(k, kk0 + kGemmKB);
    for (int j0 = 0; j0 < n; j0 += kGemmJB) {
      const int j1 = std::min(n, j0 + kGemmJB);
      for (int64_t i = r0; i < r1; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (int kk = kk0; kk < kk1; ++kk) {
          // No zero-skip here: 0 * NaN must stay NaN so divergence during
          // pre-training is not silently suppressed.
          const float av = arow[kk];
          const float* brow = b + static_cast<int64_t>(kk) * n;
          for (int j = j0; j < j1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

// -- Full-op forwards (output pre-zeroed by the caller for the GEMMs). ------

/// C += A[m,k] * B[k,n].
inline void MatMulNNForward(const float* a, const float* b, float* c, int m,
                            int k, int n) {
  const int64_t work = static_cast<int64_t>(m) * k * n;
  ForRows(m, work, kGemmParallelWork, [&](int /*worker*/, int64_t r0, int64_t r1) {
    GemmAccRows(a, b, c, k, n, r0, r1);
  });
}

/// C += A[m,k] * B[n,k]^T.
inline void MatMulNTForward(const float* a, const float* b, float* c, int m,
                            int k, int n) {
  const int64_t work = static_cast<int64_t>(m) * k * n;
  ForRows(m, work, kGemmParallelWork, [&](int /*worker*/, int64_t r0, int64_t r1) {
    kernels::GemmNT(a, k, b, k, c, n, n, k, r0, r1);
  });
}

/// C += A[k,m]^T * B[k,n].
inline void MatMulTNForward(const float* a, const float* b, float* c, int m,
                            int k, int n) {
  const int64_t work = static_cast<int64_t>(m) * k * n;
  ForRows(m, work, kGemmParallelWork, [&](int /*worker*/, int64_t r0, int64_t r1) {
    kernels::GemmTN(a, m, b, n, c, n, k, n, r0, r1);
  });
}

inline void TransposeForward(const float* a, float* o, int m, int n) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) o[static_cast<int64_t>(j) * m + i] = a[static_cast<int64_t>(i) * n + j];
  }
}

/// o[i] = a[i] + sign * b[i % cols when broadcast else i].
inline void AddSubForward(const float* a, const float* b, float* o, int64_t n,
                          int cols, bool broadcast, float sign) {
  ForElems(n, [a, b, o, cols, broadcast, sign](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float bv = broadcast ? b[i % cols] : b[i];
      o[i] = a[i] + sign * bv;
    }
  });
}

inline void MulForward(const float* a, const float* b, float* o, int64_t n) {
  ForElems(n, [a, b, o](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) o[i] = a[i] * b[i];
  });
}

inline void ScaleForward(const float* a, float* o, int64_t n, float s) {
  ForElems(n, [a, o, s](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) o[i] = a[i] * s;
  });
}

inline void AddScalarForward(const float* a, float* o, int64_t n, float s) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + s;
}

// Scalar activations. Defined once so the Elementwise autograd wrappers and
// the plan executor apply the exact same arithmetic.
inline float ReluScalar(float x) { return x > 0.0f ? x : 0.0f; }
inline float TanhScalar(float x) { return std::tanh(x); }
inline float SigmoidScalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }
inline float GeluScalar(float x) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  const float u = kC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(u));
}

template <typename ScalarFn>
void ElementwiseForward(const float* a, float* o, int64_t n, ScalarFn fn) {
  ForElems(n, [a, o, fn](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) o[i] = fn(a[i]);
  });
}

inline void SoftmaxForward(const float* a, float* o, int m, int n) {
  const int64_t work = static_cast<int64_t>(m) * n;
  ForRows(m, work, kRowParallelWork,
          [a, o, n](int /*worker*/, int64_t r0, int64_t r1) {
            for (int64_t i = r0; i < r1; ++i) {
              const float* row = a + i * n;
              float* orow = o + i * n;
              float mx = row[0];
              for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
              float total = 0.0f;
              for (int j = 0; j < n; ++j) {
                orow[j] = std::exp(row[j] - mx);
                total += orow[j];
              }
              for (int j = 0; j < n; ++j) orow[j] /= total;
            }
          });
}

inline void LogSoftmaxForward(const float* a, float* o, int m, int n) {
  const int64_t work = static_cast<int64_t>(m) * n;
  ForRows(m, work, kRowParallelWork,
          [a, o, n](int /*worker*/, int64_t r0, int64_t r1) {
            for (int64_t i = r0; i < r1; ++i) {
              const float* row = a + i * n;
              float* orow = o + i * n;
              float mx = row[0];
              for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
              float total = 0.0f;
              for (int j = 0; j < n; ++j) total += std::exp(row[j] - mx);
              const float lse = mx + std::log(total);
              for (int j = 0; j < n; ++j) orow[j] = row[j] - lse;
            }
          });
}

/// bias may be null; bias_broadcast selects the rank-1 row broadcast.
inline void ScaleAddSoftmaxForward(const float* a, const float* bias,
                                   bool bias_broadcast, float* o, int m, int n,
                                   float scale) {
  const int64_t work = static_cast<int64_t>(m) * n;
  ForRows(m, work, kRowParallelWork,
          [&](int /*worker*/, int64_t r0, int64_t r1) {
            for (int64_t i = r0; i < r1; ++i) {
              float* orow = o + i * n;
              std::copy(a + i * n, a + (i + 1) * n, orow);
              const float* brow =
                  bias == nullptr ? nullptr : (bias_broadcast ? bias : bias + i * n);
              kernels::ScaleAddSoftmaxRow(orow, brow, n, scale);
            }
          });
}

/// Fused multi-head attention forward. `attn` is the [H, T, T] probability
/// scratch, `o` the [T, dim] output; both must be zero-filled by the caller
/// (every GEMM below accumulates).
inline void FusedAttentionForward(const float* q, const float* k,
                                  const float* v, const float* bias,
                                  float* attn, float* o, int t_len, int dim,
                                  int num_heads) {
  const int head_dim = dim / num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  const int64_t rows = static_cast<int64_t>(num_heads) * t_len;
  const int64_t work = 2 * rows * t_len * head_dim;
  // One fork for the whole op; each (head, row) pair computes its score
  // row, softmaxes it in place, and accumulates its slice of the output —
  // no transposes, slices or concats, and no worker shares an output row.
  ForRows(rows, work, kGemmParallelWork,
          [&](int /*worker*/, int64_t r0, int64_t r1) {
            for (int64_t idx = r0; idx < r1; ++idx) {
              const int h = static_cast<int>(idx / t_len);
              const int64_t i = idx % t_len;
              const int off = h * head_dim;
              float* ahead = attn + static_cast<int64_t>(h) * t_len * t_len;
              kernels::GemmNTVec(q + off, dim, k + off, dim, ahead, t_len,
                                 t_len, head_dim, i, i + 1);
              kernels::ScaleAddSoftmaxRow(
                  ahead + i * t_len,
                  bias == nullptr ? nullptr : bias + i * t_len, t_len, scale);
              kernels::GemmNN(ahead, t_len, v + off, dim, o + off, dim, t_len,
                              head_dim, i, i + 1);
            }
          });
}

/// LayerNorm forward. `means` / `inv_std` are per-row saves for backward;
/// either may be null when the caller does not need them (inference replay).
inline void LayerNormForward(const float* x, const float* gamma,
                             const float* beta, float* o, int m, int n,
                             float eps, float* means, float* inv_std) {
  const int64_t work = static_cast<int64_t>(m) * n;
  ForRows(m, work, kRowParallelWork,
          [&](int /*worker*/, int64_t r0, int64_t r1) {
            for (int64_t i = r0; i < r1; ++i) {
              const float* row = x + i * n;
              float mean = 0.0f;
              for (int j = 0; j < n; ++j) mean += row[j];
              mean /= n;
              float var = 0.0f;
              for (int j = 0; j < n; ++j) {
                var += (row[j] - mean) * (row[j] - mean);
              }
              var /= n;
              const float is = 1.0f / std::sqrt(var + eps);
              if (means != nullptr) means[i] = mean;
              if (inv_std != nullptr) inv_std[i] = is;
              float* orow = o + i * n;
              for (int j = 0; j < n; ++j) {
                orow[j] = (row[j] - mean) * is * gamma[j] + beta[j];
              }
            }
          });
}

/// Row-wise L2 normalization. `inv_norm` (per-row saves) may be null.
inline void L2NormalizeForward(const float* a, float* o, int m, int n,
                               float eps, float* inv_norm) {
  for (int i = 0; i < m; ++i) {
    const float* row = a + static_cast<int64_t>(i) * n;
    float sq = 0.0f;
    for (int j = 0; j < n; ++j) sq += row[j] * row[j];
    const float in = 1.0f / (std::sqrt(sq) + eps);
    if (inv_norm != nullptr) inv_norm[i] = in;
    float* orow = o + static_cast<int64_t>(i) * n;
    for (int j = 0; j < n; ++j) orow[j] = row[j] * in;
  }
}

}  // namespace opcompute
}  // namespace resuformer

#endif  // RESUFORMER_TENSOR_OP_COMPUTE_H_
