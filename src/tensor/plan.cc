#include "tensor/plan.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "tensor/arena.h"
#include "tensor/op_compute.h"
#include "tensor/quant.h"

namespace resuformer {
namespace plan {

namespace {

thread_local Recorder* g_active_recorder = nullptr;

// ---------------------------------------------------------------------------
// Exec functions. Each reads its operand pointers out of the pre-resolved
// ExecContext table and calls the same opcompute:: loop the dynamic op
// calls. Outputs that the kernels ACCUMULATE into (the GEMM family and the
// fused-attention slabs) are zero-filled first — exactly what Tensor::Zeros
// provides on the dynamic path — so results are bit-identical.
// ---------------------------------------------------------------------------

const Value& Val(const ExecContext& ctx, int id) { return ctx.plan->values[id]; }
const float* Src(const ExecContext& ctx, int id) { return (*ctx.ptrs)[id]; }
float* Dst(ExecContext& ctx, int id) { return (*ctx.ptrs)[id]; }

void ExecMatMulNN(const Instr& ins, ExecContext& ctx) {
  float* c = Dst(ctx, ins.out);
  std::fill(c, c + static_cast<int64_t>(ins.p0) * ins.p2, 0.0f);
  opcompute::MatMulNNForward(Src(ctx, ins.in0), Src(ctx, ins.in1), c, ins.p0,
                             ins.p1, ins.p2);
}

void ExecMatMulNT(const Instr& ins, ExecContext& ctx) {
  float* c = Dst(ctx, ins.out);
  std::fill(c, c + static_cast<int64_t>(ins.p0) * ins.p2, 0.0f);
  opcompute::MatMulNTForward(Src(ctx, ins.in0), Src(ctx, ins.in1), c, ins.p0,
                             ins.p1, ins.p2);
}

void ExecMatMulTN(const Instr& ins, ExecContext& ctx) {
  float* c = Dst(ctx, ins.out);
  std::fill(c, c + static_cast<int64_t>(ins.p0) * ins.p2, 0.0f);
  opcompute::MatMulTNForward(Src(ctx, ins.in0), Src(ctx, ins.in1), c, ins.p0,
                             ins.p1, ins.p2);
}

void ExecLinearI8(const Instr& ins, ExecContext& ctx) {
  // No zero-fill of the output: LinearI8Forward overwrites C (the int32
  // accumulators in scratch are what get zeroed, inside quant.cc).
  quant::LinearI8Forward(Src(ctx, ins.in0), *ins.qweight, Dst(ctx, ins.out),
                         ins.p0, ins.p1, ins.p2,
                         ctx.workspace + ins.scratch_offset);
}

void ExecTranspose(const Instr& ins, ExecContext& ctx) {
  const Value& a = Val(ctx, ins.in0);
  opcompute::TransposeForward(Src(ctx, ins.in0), Dst(ctx, ins.out), a.rows,
                              a.cols);
}

void ExecAddSub(const Instr& ins, ExecContext& ctx) {
  const Value& o = Val(ctx, ins.out);
  opcompute::AddSubForward(Src(ctx, ins.in0), Src(ctx, ins.in1),
                           Dst(ctx, ins.out), o.size, o.cols, ins.flag,
                           ins.alpha);
}

void ExecMul(const Instr& ins, ExecContext& ctx) {
  opcompute::MulForward(Src(ctx, ins.in0), Src(ctx, ins.in1),
                        Dst(ctx, ins.out), Val(ctx, ins.out).size);
}

void ExecScale(const Instr& ins, ExecContext& ctx) {
  opcompute::ScaleForward(Src(ctx, ins.in0), Dst(ctx, ins.out),
                          Val(ctx, ins.out).size, ins.alpha);
}

void ExecAddScalar(const Instr& ins, ExecContext& ctx) {
  opcompute::AddScalarForward(Src(ctx, ins.in0), Dst(ctx, ins.out),
                              Val(ctx, ins.out).size, ins.alpha);
}

void ExecRelu(const Instr& ins, ExecContext& ctx) {
  opcompute::ElementwiseForward(Src(ctx, ins.in0), Dst(ctx, ins.out),
                                Val(ctx, ins.out).size, opcompute::ReluScalar);
}

void ExecGelu(const Instr& ins, ExecContext& ctx) {
  opcompute::ElementwiseForward(Src(ctx, ins.in0), Dst(ctx, ins.out),
                                Val(ctx, ins.out).size, opcompute::GeluScalar);
}

void ExecTanh(const Instr& ins, ExecContext& ctx) {
  opcompute::ElementwiseForward(Src(ctx, ins.in0), Dst(ctx, ins.out),
                                Val(ctx, ins.out).size, opcompute::TanhScalar);
}

void ExecSigmoid(const Instr& ins, ExecContext& ctx) {
  opcompute::ElementwiseForward(Src(ctx, ins.in0), Dst(ctx, ins.out),
                                Val(ctx, ins.out).size,
                                opcompute::SigmoidScalar);
}

void ExecSoftmax(const Instr& ins, ExecContext& ctx) {
  const Value& o = Val(ctx, ins.out);
  opcompute::SoftmaxForward(Src(ctx, ins.in0), Dst(ctx, ins.out), o.rows,
                            o.cols);
}

void ExecLogSoftmax(const Instr& ins, ExecContext& ctx) {
  const Value& o = Val(ctx, ins.out);
  opcompute::LogSoftmaxForward(Src(ctx, ins.in0), Dst(ctx, ins.out), o.rows,
                               o.cols);
}

void ExecScaleAddSoftmax(const Instr& ins, ExecContext& ctx) {
  const Value& o = Val(ctx, ins.out);
  const float* bias = ins.in1 >= 0 ? Src(ctx, ins.in1) : nullptr;
  opcompute::ScaleAddSoftmaxForward(Src(ctx, ins.in0), bias, ins.flag,
                                    Dst(ctx, ins.out), o.rows, o.cols,
                                    ins.alpha);
}

void ExecFusedAttention(const Instr& ins, ExecContext& ctx) {
  const int t_len = ins.p0, dim = ins.p1, num_heads = ins.p2;
  float* o = Dst(ctx, ins.out);
  float* attn = ctx.workspace + ins.scratch_offset;
  std::fill(o, o + static_cast<int64_t>(t_len) * dim, 0.0f);
  std::fill(attn, attn + ins.scratch_size, 0.0f);
  const float* bias =
      ins.extra_in.empty() ? nullptr : Src(ctx, ins.extra_in[0]);
  opcompute::FusedAttentionForward(Src(ctx, ins.in0), Src(ctx, ins.in1),
                                   Src(ctx, ins.in2), bias, attn, o, t_len,
                                   dim, num_heads);
}

void ExecConcatRows(const Instr& ins, ExecContext& ctx) {
  float* o = Dst(ctx, ins.out);
  int64_t off = 0;
  for (int id : ins.extra_in) {
    const Value& p = Val(ctx, id);
    std::copy(Src(ctx, id), Src(ctx, id) + p.size, o + off);
    off += p.size;
  }
}

void ExecConcatCols(const Instr& ins, ExecContext& ctx) {
  const Value& o = Val(ctx, ins.out);
  float* po = Dst(ctx, ins.out);
  const int m = o.rows, total_cols = o.cols;
  int col = 0;
  for (int id : ins.extra_in) {
    const Value& p = Val(ctx, id);
    const float* pp = Src(ctx, id);
    const int pc = p.cols;
    for (int i = 0; i < m; ++i) {
      std::copy(pp + static_cast<int64_t>(i) * pc,
                pp + static_cast<int64_t>(i + 1) * pc,
                po + static_cast<int64_t>(i) * total_cols + col);
    }
    col += pc;
  }
}

void ExecSliceRows(const Instr& ins, ExecContext& ctx) {
  const int n = Val(ctx, ins.in0).cols;
  const float* a = Src(ctx, ins.in0);
  std::copy(a + static_cast<int64_t>(ins.p0) * n,
            a + static_cast<int64_t>(ins.p0 + ins.p1) * n, Dst(ctx, ins.out));
}

void ExecSliceCols(const Instr& ins, ExecContext& ctx) {
  const Value& src = Val(ctx, ins.in0);
  const int m = src.rows, n = src.cols, start = ins.p0, len = ins.p1;
  const float* a = Src(ctx, ins.in0);
  float* o = Dst(ctx, ins.out);
  for (int i = 0; i < m; ++i) {
    std::copy(a + static_cast<int64_t>(i) * n + start,
              a + static_cast<int64_t>(i) * n + start + len,
              o + static_cast<int64_t>(i) * len);
  }
}

void ExecGather(const Instr& ins, ExecContext& ctx) {
  const Value& src = Val(ctx, ins.in0);
  const int n = src.cols;
  const float* a = Src(ctx, ins.in0);
  float* o = Dst(ctx, ins.out);
  const std::vector<int>& idx = ins.index_role >= 0
                                    ? *ctx.bindings->indices[ins.index_role]
                                    : ins.indices;
  const int m = static_cast<int>(idx.size());
  for (int i = 0; i < m; ++i) {
    const int r = idx[i];
    if (r < 0 || r >= src.rows) {  // bad bound index: dynamic-path fallback
      ctx.failed = true;
      return;
    }
    std::copy(a + static_cast<int64_t>(r) * n,
              a + static_cast<int64_t>(r + 1) * n,
              o + static_cast<int64_t>(i) * n);
  }
}

void ExecLayerNorm(const Instr& ins, ExecContext& ctx) {
  const Value& o = Val(ctx, ins.out);
  opcompute::LayerNormForward(Src(ctx, ins.in0), Src(ctx, ins.in1),
                              Src(ctx, ins.in2), Dst(ctx, ins.out), o.rows,
                              o.cols, ins.alpha, nullptr, nullptr);
}

void ExecL2Normalize(const Instr& ins, ExecContext& ctx) {
  const Value& o = Val(ctx, ins.out);
  opcompute::L2NormalizeForward(Src(ctx, ins.in0), Dst(ctx, ins.out), o.rows,
                                o.cols, ins.alpha, nullptr);
}

void ExecReshape(const Instr& ins, ExecContext& ctx) {
  const float* a = Src(ctx, ins.in0);
  std::copy(a, a + Val(ctx, ins.out).size, Dst(ctx, ins.out));
}

}  // namespace

const ExecFns& GetExecFns() {
  static const ExecFns fns = {
      ExecMatMulNN,   ExecMatMulNT, ExecMatMulTN, ExecTranspose,
      ExecAddSub,     ExecMul,      ExecScale,    ExecAddScalar,
      ExecRelu,       ExecGelu,     ExecTanh,     ExecSigmoid,
      ExecSoftmax,    ExecLogSoftmax,
      ExecConcatRows, ExecConcatCols, ExecSliceRows, ExecSliceCols,
      ExecReshape,    ExecL2Normalize};
  return fns;
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

Recorder::Recorder() {
  RF_CHECK(g_active_recorder == nullptr)
      << "nested plan recorders on one thread";
  g_active_recorder = this;
}

Recorder::~Recorder() { g_active_recorder = nullptr; }

Recorder* Recorder::Active() { return g_active_recorder; }

int Recorder::ValueIdFor(const Tensor& t) {
  auto it = ids_.find(t.impl().get());
  if (it != ids_.end()) return it->second;
  // First sighting of storage no recorded op produced: a constant leaf
  // (model weight, literal position/segment table, initial LSTM state).
  // The plan keeps the impl alive, so the traced contents are the replayed
  // contents and the raw-pointer key can never be recycled.
  Value v;
  v.kind = Value::kConstant;
  v.rows = t.rows();
  v.cols = t.cols();
  v.size = t.size();
  v.constant = t.impl();
  const int id = static_cast<int>(values_.size());
  values_.push_back(std::move(v));
  ids_.emplace(t.impl().get(), id);
  return id;
}

int Recorder::RegisterOutput(const Tensor& out) {
  Value v;
  v.kind = Value::kTemp;
  v.rows = out.rows();
  v.cols = out.cols();
  v.size = out.size();
  const int id = static_cast<int>(values_.size());
  values_.push_back(std::move(v));
  ids_.emplace(out.impl().get(), id);
  keepalive_.push_back(out.impl());
  return id;
}

Instr& Recorder::Append(ExecFn fn, const char* name) {
  ++instr_count_;
  instrs_.emplace_back();
  Instr& ins = instrs_.back();
  ins.exec = fn;
  ins.name = name;
  return ins;
}

void Recorder::BindInputTensor(int role, const Tensor& t) {
  RF_CHECK_GE(role, 0);
  RF_CHECK_LT(role, kNumRoles);
  if (ids_.count(t.impl().get()) > 0) {
    poisoned_ = true;  // already traced under another identity
    return;
  }
  Value v;
  v.kind = Value::kBinding;
  v.rows = t.rows();
  v.cols = t.cols();
  v.size = t.size();
  v.role = role;
  const int id = static_cast<int>(values_.size());
  values_.push_back(std::move(v));
  ids_.emplace(t.impl().get(), id);
  keepalive_.push_back(t.impl());
}

void Recorder::AnnotateNextGather(int role) {
  if (pending_gather_role_ != -1) poisoned_ = true;  // unconsumed annotation
  pending_gather_role_ = role;
}

void Recorder::RecordUnary(ExecFn fn, const char* name, const Tensor& a,
                           const Tensor& out, float alpha) {
  if (poisoned_) return;
  const int ia = ValueIdFor(a);
  Instr& ins = Append(fn, name);
  ins.in0 = ia;
  ins.alpha = alpha;
  ins.out = RegisterOutput(out);
}

void Recorder::RecordBinary(ExecFn fn, const char* name, const Tensor& a,
                            const Tensor& b, const Tensor& out, float alpha,
                            bool flag) {
  if (poisoned_) return;
  const int ia = ValueIdFor(a);
  const int ib = ValueIdFor(b);
  Instr& ins = Append(fn, name);
  ins.in0 = ia;
  ins.in1 = ib;
  ins.alpha = alpha;
  ins.flag = flag;
  ins.out = RegisterOutput(out);
}

void Recorder::RecordGemm(ExecFn fn, const char* name, const Tensor& a,
                          const Tensor& b, const Tensor& out, int m, int k,
                          int n) {
  if (poisoned_) return;
  const int ia = ValueIdFor(a);
  const int ib = ValueIdFor(b);
  Instr& ins = Append(fn, name);
  ins.in0 = ia;
  ins.in1 = ib;
  ins.p0 = m;
  ins.p1 = k;
  ins.p2 = n;
  ins.out = RegisterOutput(out);
}

void Recorder::RecordScaleAddSoftmax(const Tensor& a, const Tensor& bias,
                                     const Tensor& out, float scale,
                                     bool bias_broadcast) {
  if (poisoned_) return;
  const int ia = ValueIdFor(a);
  const int ib = bias.defined() ? ValueIdFor(bias) : -1;
  Instr& ins = Append(ExecScaleAddSoftmax, "scale_add_softmax");
  ins.in0 = ia;
  ins.in1 = ib;
  ins.alpha = scale;
  ins.flag = bias_broadcast;
  ins.out = RegisterOutput(out);
}

void Recorder::RecordFusedAttention(const Tensor& q, const Tensor& k,
                                    const Tensor& v, const Tensor& bias,
                                    const Tensor& out, int t_len, int dim,
                                    int num_heads) {
  if (poisoned_) return;
  const int iq = ValueIdFor(q);
  const int ik = ValueIdFor(k);
  const int iv = ValueIdFor(v);
  const int ib = bias.defined() ? ValueIdFor(bias) : -1;
  Instr& ins = Append(ExecFusedAttention, "fused_attention");
  ins.in0 = iq;
  ins.in1 = ik;
  ins.in2 = iv;
  if (ib >= 0) ins.extra_in.push_back(ib);
  ins.p0 = t_len;
  ins.p1 = dim;
  ins.p2 = num_heads;
  ins.scratch_size = static_cast<int64_t>(num_heads) * t_len * t_len;
  ins.out = RegisterOutput(out);
}

void Recorder::RecordConcat(ExecFn fn, const char* name,
                            const std::vector<Tensor>& parts,
                            const Tensor& out) {
  if (poisoned_) return;
  std::vector<int> ids;
  ids.reserve(parts.size());
  for (const Tensor& p : parts) ids.push_back(ValueIdFor(p));
  Instr& ins = Append(fn, name);
  ins.extra_in = std::move(ids);
  ins.out = RegisterOutput(out);
}

void Recorder::RecordSlice(ExecFn fn, const char* name, const Tensor& a,
                           const Tensor& out, int start, int len) {
  if (poisoned_) return;
  const int ia = ValueIdFor(a);
  Instr& ins = Append(fn, name);
  ins.in0 = ia;
  ins.p0 = start;
  ins.p1 = len;
  ins.out = RegisterOutput(out);
}

void Recorder::RecordGather(const Tensor& a, const std::vector<int>& indices,
                            const Tensor& out) {
  if (poisoned_) return;
  const int ia = ValueIdFor(a);
  Instr& ins = Append(ExecGather, "gather_rows");
  ins.in0 = ia;
  if (pending_gather_role_ >= 0) {
    ins.index_role = pending_gather_role_;
    ins.p0 = static_cast<int>(indices.size());  // expected index count
    pending_gather_role_ = -1;
  } else {
    ins.indices = indices;
  }
  ins.out = RegisterOutput(out);
}

void Recorder::RecordLayerNorm(const Tensor& x, const Tensor& gamma,
                               const Tensor& beta, const Tensor& out,
                               float eps) {
  if (poisoned_) return;
  const int ix = ValueIdFor(x);
  const int ig = ValueIdFor(gamma);
  const int ib = ValueIdFor(beta);
  Instr& ins = Append(ExecLayerNorm, "layer_norm");
  ins.in0 = ix;
  ins.in1 = ig;
  ins.in2 = ib;
  ins.alpha = eps;
  ins.out = RegisterOutput(out);
}

void Recorder::RewriteGemmsToInt8() {
  metrics::Counter* rewrites =
      metrics::MetricsRegistry::Global().GetCounter("quant.instrs_rewritten");
  // One quantized copy per (weight value, layout): a weight feeding several
  // GEMMs in the same orientation (e.g. a shared embedding matrix) is
  // quantized once and shared by shared_ptr.
  std::unordered_map<int64_t, std::shared_ptr<const quant::QuantizedTensor>>
      cache;
  for (Instr& ins : instrs_) {
    const bool nn = ins.exec == ExecMatMulNN;
    const bool nt = ins.exec == ExecMatMulNT;
    if ((!nn && !nt) || ins.in1 < 0) continue;
    const Value& w = values_[ins.in1];
    // Only plan constants qualify: their bytes are frozen for the plan's
    // lifetime, so quantizing once at build time is sound. Dynamic operands
    // (attention QK^T / AV) stay fp32.
    if (w.kind != Value::kConstant) continue;
    if (ins.p1 > quant::kMaxI8ReduceDim) continue;  // int32 would overflow
    const int64_t key = static_cast<int64_t>(ins.in1) * 2 + (nn ? 1 : 0);
    auto it = cache.find(key);
    if (it == cache.end()) {
      // NN: B is [k, n], pre-transpose to NT layout [n, k]. NT: B is
      // already [n, k].
      auto q = std::make_shared<quant::QuantizedTensor>(
          nn ? quant::QuantizeTransposed(w.constant->data_ptr(), ins.p1,
                                         ins.p2)
             : quant::QuantizeRows(w.constant->data_ptr(), ins.p2, ins.p1));
      it = cache.emplace(key, std::move(q)).first;
    }
    ins.qweight = it->second;
    ins.exec = ExecLinearI8;
    ins.name = nn ? "matmul_nn_i8" : "matmul_nt_i8";
    ins.scratch_size = quant::LinearI8ScratchFloats(ins.p0, ins.p1, ins.p2);
    rewrites->Increment();
  }
}

std::shared_ptr<const Plan> Recorder::Finish(const Tensor& output) {
  if (poisoned_ || pending_gather_role_ != -1) return nullptr;
  // An op with no recording hook (a training-only op, or one added later
  // without plan support) created a node the instruction list never saw:
  // the trace is incomplete, refuse to build a plan from it.
  if (node_count_ != instr_count_) return nullptr;
  if (!output.defined()) return nullptr;
  auto it = ids_.find(output.impl().get());
  if (it == ids_.end()) return nullptr;
  const int out_id = it->second;
  if (values_[out_id].kind != Value::kTemp) return nullptr;

  // Kernel substitution happens before liveness so the quant scratch gets a
  // workspace slot like any other per-instruction scratch.
  if (int8_enabled_) RewriteGemmsToInt8();

  // Last-use liveness over value ids; the plan output lives to the end.
  const int64_t num_instrs = static_cast<int64_t>(instrs_.size());
  std::vector<int64_t> last_use(values_.size(), -1);
  for (int64_t i = 0; i < num_instrs; ++i) {
    const Instr& ins = instrs_[i];
    for (int id : {ins.in0, ins.in1, ins.in2}) {
      if (id >= 0) last_use[id] = i;
    }
    for (int id : ins.extra_in) last_use[id] = i;
  }
  last_use[out_id] = num_instrs;

  // Linear-scan slot assignment with exact-size free lists: a temp's slot
  // is recycled the instruction after its last read, so the workspace peaks
  // at the true live set instead of the sum of all temporaries.
  std::unordered_map<int64_t, std::vector<int64_t>> free_slots;
  int64_t workspace = 0;
  auto alloc = [&](int64_t size) {
    auto& list = free_slots[size];
    if (!list.empty()) {
      const int64_t off = list.back();
      list.pop_back();
      return off;
    }
    const int64_t off = workspace;
    workspace += size;
    return off;
  };
  std::vector<char> released(values_.size(), 0);
  for (int64_t i = 0; i < num_instrs; ++i) {
    Instr& ins = instrs_[i];
    Value& ov = values_[ins.out];
    ov.offset = alloc(ov.size);
    if (ins.scratch_size > 0) {
      ins.scratch_offset = alloc(ins.scratch_size);
      free_slots[ins.scratch_size].push_back(ins.scratch_offset);
    }
    auto release_if_dead = [&](int id) {
      if (id < 0) return;
      const Value& v = values_[id];
      // The released guard keeps a value feeding two operands of one
      // instruction from parking its slot twice (which would later hand
      // one offset to two live temporaries).
      if (v.kind == Value::kTemp && last_use[id] == i && !released[id]) {
        released[id] = 1;
        free_slots[v.size].push_back(v.offset);
      }
    };
    release_if_dead(ins.in0);
    release_if_dead(ins.in1);
    release_if_dead(ins.in2);
    for (int id : ins.extra_in) release_if_dead(id);
    if (last_use[ins.out] < 0) {  // produced but never read: free at once
      free_slots[ov.size].push_back(ov.offset);
    }
  }

  auto built = std::make_shared<Plan>();
  // Role requirements: every index role may appear on at most one gather
  // (replays supply exactly one id vector per role), every tensor binding
  // is validated by size.
  for (const Instr& ins : instrs_) {
    if (ins.index_role < 0) continue;
    for (const Plan::RoleReq& req : built->index_roles) {
      if (req.role == ins.index_role) return nullptr;  // duplicate role
    }
    built->index_roles.push_back({ins.index_role, ins.p0});
  }
  for (const Value& v : values_) {
    if (v.kind == Value::kBinding) {
      built->tensor_roles.push_back({v.role, v.size});
    }
  }
  built->output = out_id;
  built->output_size = values_[out_id].size;
  built->output_rows = values_[out_id].rows;
  built->output_cols = values_[out_id].cols;
  built->workspace_floats = workspace;
  built->values = std::move(values_);
  built->instrs = std::move(instrs_);
  // Traced temporaries can die now; the plan only pins constants.
  keepalive_.clear();
  ids_.clear();
  return built;
}

// ---------------------------------------------------------------------------
// PlanExecutor
// ---------------------------------------------------------------------------

bool PlanExecutor::Run(const Plan& plan, const BindingSet& bindings,
                       float* out) {
  for (const Plan::RoleReq& req : plan.index_roles) {
    const std::vector<int>* idx = bindings.indices[req.role];
    if (idx == nullptr || static_cast<int64_t>(idx->size()) != req.size) {
      return false;
    }
  }
  for (const Plan::RoleReq& req : plan.tensor_roles) {
    if (bindings.tensors[req.role] == nullptr ||
        bindings.tensor_sizes[req.role] != req.size) {
      return false;
    }
  }
  // One arena buffer per replay: after the first replay of a bucket the
  // acquire is a free-list hit, so steady state performs no allocation.
  ArenaBuffer workspace(plan.workspace_floats);
  // Pointer table reused across replays on this thread: `assign` rewrites
  // the contents in place, so after the first replay of the largest bucket
  // the table never reallocates.
  thread_local std::vector<float*> value_ptrs;
  value_ptrs.assign(plan.values.size(), nullptr);
  ExecContext ctx;
  ctx.plan = &plan;
  ctx.bindings = &bindings;
  ctx.workspace = workspace.data();
  ctx.ptrs = &value_ptrs;
  for (size_t i = 0; i < plan.values.size(); ++i) {
    const Value& v = plan.values[i];
    switch (v.kind) {
      case Value::kConstant:
        // const_cast is safe: exec functions only ever write kTemp slots.
        value_ptrs[i] = const_cast<float*>(v.constant->data_ptr());
        break;
      case Value::kBinding:
        value_ptrs[i] = const_cast<float*>(bindings.tensors[v.role]);
        break;
      case Value::kTemp:
        value_ptrs[i] = workspace.data() + v.offset;
        break;
    }
  }
  for (const Instr& ins : plan.instrs) {
    ins.exec(ins, ctx);
    if (ctx.failed) return false;
  }
  const float* result = value_ptrs[plan.output];
  std::copy(result, result + plan.output_size, out);
  return true;
}

}  // namespace plan
}  // namespace resuformer
