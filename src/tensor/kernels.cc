#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

// The generic-vector helpers below pass Vf8 values through always-inlined
// internal functions; GCC warns that the by-value ABI would differ if AVX
// were enabled, which is irrelevant inside one TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

namespace resuformer {
namespace kernels {

namespace {
// Tile sizes mirror the ops.cc blocked GEMM: a KB x JB tile of B (~16 KiB)
// stays L1-resident while successive A rows stream over it.
constexpr int kKB = 32;
constexpr int kJB = 128;

#if defined(__GNUC__) || defined(__clang__)
#define RESUFORMER_HAVE_VEC 1
// 8-lane float vector via the compiler's generic vector extension: lowered
// to AVX where available, pairs of SSE ops otherwise, and plain scalar code
// on targets without SIMD. memcpy in/out keeps loads/stores unaligned-safe.
typedef float Vf8 __attribute__((vector_size(32)));

inline Vf8 LoadVf8(const float* p) {
  Vf8 v;
  __builtin_memcpy(&v, p, sizeof(Vf8));
  return v;
}

inline void StoreVf8(float* p, Vf8 v) { __builtin_memcpy(p, &v, sizeof(Vf8)); }
#endif

// Reassociated dot product: 16 partial lanes accumulated in a fixed order,
// then a fixed-shape lane reduction. NOT bit-identical to the serial
// ascending-t dot (floating-point addition is not associative) but always
// deterministic, and within ~1e-6 relative of it. Only the fused attention
// path uses this; the transposed-GEMM ops keep the strict serial order.
inline float DotReassoc(const float* a, const float* b, int d) {
  int t = 0;
  float sum = 0.0f;
#if defined(RESUFORMER_HAVE_VEC)
  if (d >= 16) {
    Vf8 acc0 = {};
    Vf8 acc1 = {};
    for (; t + 16 <= d; t += 16) {
      acc0 += LoadVf8(a + t) * LoadVf8(b + t);
      acc1 += LoadVf8(a + t + 8) * LoadVf8(b + t + 8);
    }
    const Vf8 acc = acc0 + acc1;
    float lanes[8];
    __builtin_memcpy(lanes, &acc, sizeof(lanes));
    sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
          ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  }
#endif
  for (; t < d; ++t) sum += a[t] * b[t];
  return sum;
}
}  // namespace

void GemmNT(const float* a, int lda, const float* b, int ldb, float* c,
            int ldc, int bn, int d, int64_t r0, int64_t r1) {
  // Stride preconditions (debug-only; these run inside ParallelFor chunks).
  RF_DCHECK_GE(lda, d);
  RF_DCHECK_GE(ldb, d);
  RF_DCHECK_GE(ldc, bn);
  RF_DCHECK(0 <= r0 && r0 <= r1) << r0 << " vs " << r1;
  for (int64_t i = r0; i < r1; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    int j = 0;
    for (; j + 4 <= bn; j += 4) {
      const float* b0 = b + static_cast<int64_t>(j) * ldb;
      const float* b1 = b0 + ldb;
      const float* b2 = b1 + ldb;
      const float* b3 = b2 + ldb;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (int t = 0; t < d; ++t) {
        const float av = arow[t];
        acc0 += av * b0[t];
        acc1 += av * b1[t];
        acc2 += av * b2[t];
        acc3 += av * b3[t];
      }
      crow[j] += acc0;
      crow[j + 1] += acc1;
      crow[j + 2] += acc2;
      crow[j + 3] += acc3;
    }
    for (; j < bn; ++j) {
      const float* brow = b + static_cast<int64_t>(j) * ldb;
      float acc = 0.0f;
      for (int t = 0; t < d; ++t) acc += arow[t] * brow[t];
      crow[j] += acc;
    }
  }
}

namespace {
// crow[j] += av * brow[j] for j in [j0, j1). Vector lanes hold independent
// output elements, so this is bit-identical to the scalar loop: each c[j]
// sees the exact same multiply-add, just eight at a time.
inline void AxpyRow(float av, const float* brow, float* crow, int j0,
                    int j1) {
  int j = j0;
#if defined(RESUFORMER_HAVE_VEC)
  const Vf8 avv = {av, av, av, av, av, av, av, av};
  for (; j + 8 <= j1; j += 8) {
    StoreVf8(crow + j, LoadVf8(crow + j) + avv * LoadVf8(brow + j));
  }
#endif
  for (; j < j1; ++j) crow[j] += av * brow[j];
}
}  // namespace

void GemmNN(const float* a, int lda, const float* b, int ldb, float* c,
            int ldc, int d, int bn, int64_t r0, int64_t r1) {
  RF_DCHECK_GE(lda, d);
  RF_DCHECK_GE(ldb, bn);
  RF_DCHECK_GE(ldc, bn);
  RF_DCHECK(0 <= r0 && r0 <= r1) << r0 << " vs " << r1;
  for (int t0 = 0; t0 < d; t0 += kKB) {
    const int t1 = std::min(d, t0 + kKB);
    for (int j0 = 0; j0 < bn; j0 += kJB) {
      const int j1 = std::min(bn, j0 + kJB);
      for (int64_t i = r0; i < r1; ++i) {
        const float* arow = a + i * lda;
        float* crow = c + i * ldc;
        for (int t = t0; t < t1; ++t) {
          // No zero-skip: 0 * NaN must stay NaN (divergence stays visible).
          const float av = arow[t];
          const float* brow = b + static_cast<int64_t>(t) * ldb;
          AxpyRow(av, brow, crow, j0, j1);
        }
      }
    }
  }
}

void GemmTN(const float* a, int lda, const float* b, int ldb, float* c,
            int ldc, int d, int bn, int64_t r0, int64_t r1) {
  RF_DCHECK_GE(lda, r1);  // A is [d, *]: its rows must span the C rows used
  RF_DCHECK_GE(ldb, bn);
  RF_DCHECK_GE(ldc, bn);
  RF_DCHECK(0 <= r0 && r0 <= r1) << r0 << " vs " << r1;
  for (int j0 = 0; j0 < bn; j0 += kJB) {
    const int j1 = std::min(bn, j0 + kJB);
    for (int t = 0; t < d; ++t) {
      const float* arow = a + static_cast<int64_t>(t) * lda;
      const float* brow = b + static_cast<int64_t>(t) * ldb;
      for (int64_t i = r0; i < r1; ++i) {
        AxpyRow(arow[i], brow, c + i * ldc, j0, j1);
      }
    }
  }
}

void GemmNTVec(const float* a, int lda, const float* b, int ldb, float* c,
               int ldc, int bn, int d, int64_t r0, int64_t r1) {
  RF_DCHECK_GE(lda, d);
  RF_DCHECK_GE(ldb, d);
  RF_DCHECK_GE(ldc, bn);
  RF_DCHECK(0 <= r0 && r0 <= r1) << r0 << " vs " << r1;
  for (int64_t i = r0; i < r1; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (int j = 0; j < bn; ++j) {
      crow[j] += DotReassoc(arow, b + static_cast<int64_t>(j) * ldb, d);
    }
  }
}

namespace {
#if defined(RESUFORMER_HAVE_VEC)
// Integer lanes for the int8 GEMM family. The product of two int8 values
// fits int16 (|127 * 127| = 16129), and the SUM OF TWO such products still
// fits (32258 < 32767), so each 32-element step multiplies two 16-lane
// int16 vectors, adds them pairwise in int16, and only then widens to the
// int32 accumulator — half the widening work of a naive convert-per-lane
// loop. Integer addition is associative, so any lane order is bit-exact.
typedef int8_t Vi8x16 __attribute__((vector_size(16)));
typedef int16_t Vi16x16 __attribute__((vector_size(32)));
typedef int32_t Vi32x16 __attribute__((vector_size(64)));

inline Vi16x16 LoadI8AsI16(const int8_t* p) {
  Vi8x16 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return __builtin_convertvector(v, Vi16x16);
}
#endif

// Exact int32 dot product of two int8 vectors of length d.
inline int32_t DotI8(const int8_t* a, const int8_t* b, int d) {
  int t = 0;
  int32_t sum = 0;
#if defined(RESUFORMER_HAVE_VEC)
  if (d >= 32) {
    Vi32x16 acc = {};
    for (; t + 32 <= d; t += 32) {
      const Vi16x16 p0 = LoadI8AsI16(a + t) * LoadI8AsI16(b + t);
      const Vi16x16 p1 = LoadI8AsI16(a + t + 16) * LoadI8AsI16(b + t + 16);
      acc += __builtin_convertvector(p0 + p1, Vi32x16);
    }
    int32_t lanes[16];
    __builtin_memcpy(lanes, &acc, sizeof(lanes));
    for (int l = 0; l < 16; ++l) sum += lanes[l];
  }
#endif
  for (; t < d; ++t) {
    sum += static_cast<int32_t>(a[t]) * static_cast<int32_t>(b[t]);
  }
  return sum;
}
}  // namespace

void GemmNTI8(const int8_t* a, int lda, const int8_t* b, int ldb, int32_t* c,
              int ldc, int bn, int d, int64_t r0, int64_t r1) {
  RF_DCHECK_GE(lda, d);
  RF_DCHECK_GE(ldb, d);
  RF_DCHECK_GE(ldc, bn);
  RF_DCHECK(0 <= r0 && r0 <= r1) << r0 << " vs " << r1;
  for (int64_t i = r0; i < r1; ++i) {
    const int8_t* arow = a + i * lda;
    int32_t* crow = c + i * ldc;
    for (int j = 0; j < bn; ++j) {
      crow[j] += DotI8(arow, b + static_cast<int64_t>(j) * ldb, d);
    }
  }
}

void GemmNNI8(const int8_t* a, int lda, const int8_t* b, int ldb, int32_t* c,
              int ldc, int d, int bn, int64_t r0, int64_t r1) {
  RF_DCHECK_GE(lda, d);
  RF_DCHECK_GE(ldb, bn);
  RF_DCHECK_GE(ldc, bn);
  RF_DCHECK(0 <= r0 && r0 <= r1) << r0 << " vs " << r1;
  for (int t0 = 0; t0 < d; t0 += kKB) {
    const int t1 = std::min(d, t0 + kKB);
    for (int j0 = 0; j0 < bn; j0 += kJB) {
      const int j1 = std::min(bn, j0 + kJB);
      for (int64_t i = r0; i < r1; ++i) {
        const int8_t* arow = a + i * lda;
        int32_t* crow = c + i * ldc;
        for (int t = t0; t < t1; ++t) {
          const int32_t av = arow[t];
          const int8_t* brow = b + static_cast<int64_t>(t) * ldb;
          for (int j = j0; j < j1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void GemmTNI8(const int8_t* a, int lda, const int8_t* b, int ldb, int32_t* c,
              int ldc, int d, int bn, int64_t r0, int64_t r1) {
  RF_DCHECK_GE(lda, r1);  // A is [d, *]: its rows must span the C rows used
  RF_DCHECK_GE(ldb, bn);
  RF_DCHECK_GE(ldc, bn);
  RF_DCHECK(0 <= r0 && r0 <= r1) << r0 << " vs " << r1;
  for (int j0 = 0; j0 < bn; j0 += kJB) {
    const int j1 = std::min(bn, j0 + kJB);
    for (int t = 0; t < d; ++t) {
      const int8_t* arow = a + static_cast<int64_t>(t) * lda;
      const int8_t* brow = b + static_cast<int64_t>(t) * ldb;
      for (int64_t i = r0; i < r1; ++i) {
        const int32_t av = arow[i];
        int32_t* crow = c + i * ldc;
        for (int j = j0; j < j1; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void ScaleAddSoftmaxRow(float* row, const float* bias, int n, float scale) {
  RF_DCHECK_GT(n, 0) << "softmax over an empty row";
  if (bias != nullptr) {
    for (int j = 0; j < n; ++j) row[j] = row[j] * scale + bias[j];
  } else {
    for (int j = 0; j < n; ++j) row[j] *= scale;
  }
  float mx = row[0];
  for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
  float total = 0.0f;
  for (int j = 0; j < n; ++j) {
    row[j] = std::exp(row[j] - mx);
    total += row[j];
  }
  for (int j = 0; j < n; ++j) row[j] /= total;
}

void SoftmaxBackwardRow(const float* y, const float* dy, float* dx, int n,
                        bool out_overwrite) {
  RF_DCHECK_GE(n, 0);
  float dot = 0.0f;
  for (int j = 0; j < n; ++j) dot += dy[j] * y[j];
  if (out_overwrite) {
    for (int j = 0; j < n; ++j) dx[j] = (dy[j] - dot) * y[j];
  } else {
    for (int j = 0; j < n; ++j) dx[j] += (dy[j] - dot) * y[j];
  }
}

}  // namespace kernels
}  // namespace resuformer
