#include "tensor/arena.h"

#include <utility>

namespace resuformer {

namespace {

/// Index of the smallest class holding >= n floats, or -1 when n exceeds
/// the largest class.
int CeilClassIndex(int64_t n, int min_log2, int max_log2) {
  for (int c = min_log2; c <= max_log2; ++c) {
    if ((int64_t{1} << c) >= n) return c - min_log2;
  }
  return -1;
}

/// Index of the largest class with size <= capacity, or -1 when the buffer
/// is below the minimum class.
int FloorClassIndex(int64_t capacity, int min_log2, int max_log2) {
  int idx = -1;
  for (int c = min_log2; c <= max_log2; ++c) {
    if ((int64_t{1} << c) <= capacity) idx = c - min_log2;
  }
  return idx;
}

/// Per-thread mirrors of the hit/miss counters (see thread_stats()).
/// Plain int64_t: only the owning thread touches them, no lock needed.
thread_local int64_t t_hits = 0;
thread_local int64_t t_misses = 0;

}  // namespace

TensorArena& TensorArena::Global() {
  static TensorArena* arena = new TensorArena();
  return *arena;
}

TensorArena::TensorArena() {
  auto& registry = metrics::MetricsRegistry::Global();
  hits_ = registry.GetCounter("arena.hits");
  misses_ = registry.GetCounter("arena.misses");
  bytes_recycled_ = registry.GetCounter("arena.bytes_recycled");
  outstanding_ = registry.GetGauge("arena.outstanding");
  cached_bytes_ = registry.GetGauge("arena.cached_bytes");
}

void TensorArena::SetEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

bool TensorArena::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

std::vector<float> TensorArena::Acquire(int64_t n, bool* from_arena) {
  if (from_arena != nullptr) *from_arena = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (enabled_) {
      const int cls = CeilClassIndex(n, kMinClassLog2, kMaxClassLog2);
      if (cls >= 0 && !free_lists_[cls].empty()) {
        std::vector<float> buf = std::move(free_lists_[cls].back());
        free_lists_[cls].pop_back();
        cached_bytes_->Add(-static_cast<int64_t>(buf.capacity()) *
                           static_cast<int64_t>(sizeof(float)));
        hits_->Increment();
        ++t_hits;
        outstanding_->Add(1);
        bytes_recycled_->Increment(n * static_cast<int64_t>(sizeof(float)));
        if (from_arena != nullptr) *from_arena = true;
        // Capacity >= class size >= n, so this fill never reallocates.
        buf.assign(static_cast<size_t>(n), 0.0f);
        return buf;
      }
      misses_->Increment();
      ++t_misses;
      outstanding_->Add(1);
      if (from_arena != nullptr) *from_arena = true;
      // Reserve the full class so the buffer files back into the same
      // class on release (oversized requests reserve exactly n).
      std::vector<float> buf;
      buf.reserve(static_cast<size_t>(
          cls >= 0 ? int64_t{1} << (cls + kMinClassLog2) : n));
      buf.assign(static_cast<size_t>(n), 0.0f);
      return buf;
    }
    misses_->Increment();
    ++t_misses;
  }
  return std::vector<float>(static_cast<size_t>(n), 0.0f);
}

void TensorArena::Release(std::vector<float>&& buffer, bool was_acquired) {
  std::vector<float> local = std::move(buffer);  // free outside the lock
  std::lock_guard<std::mutex> lock(mu_);
  if (was_acquired) outstanding_->Add(-1);
  if (!enabled_) return;
  const int64_t capacity = static_cast<int64_t>(local.capacity());
  const int cls = FloorClassIndex(capacity, kMinClassLog2, kMaxClassLog2);
  if (cls < 0) return;  // below the minimum class: not worth caching
  const int64_t bytes = capacity * static_cast<int64_t>(sizeof(float));
  if (cached_bytes_->value() + bytes > budget_bytes_) return;
  cached_bytes_->Add(bytes);
  free_lists_[cls].push_back(std::move(local));
}

TensorArena::ThreadStats TensorArena::thread_stats() {
  return ThreadStats{t_hits, t_misses};
}

TensorArena::Stats TensorArena::stats() const {
  Stats out;
  out.hits = hits_->value();
  out.misses = misses_->value();
  out.outstanding = outstanding_->value();
  out.bytes_recycled = bytes_recycled_->value();
  out.cached_bytes = cached_bytes_->value();
  return out;
}

void TensorArena::ResetStats() {
  // outstanding and cached_bytes mirror live state; only the tallies reset.
  hits_->Reset();
  misses_->Reset();
  bytes_recycled_->Reset();
}

void TensorArena::Clear() {
  std::vector<std::vector<float>> graveyard;  // free outside the lock
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& list : free_lists_) {
      for (auto& buf : list) graveyard.push_back(std::move(buf));
      list.clear();
    }
    cached_bytes_->Set(0);
  }
}

void TensorArena::SetBudgetBytes(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = bytes;
}

ArenaBuffer::ArenaBuffer(int64_t n) {
  // Assigned in the body: an init-list Acquire(n, &from_arena_) would have
  // its write overwritten by from_arena_'s own (later) default initializer.
  buffer_ = TensorArena::Global().Acquire(n, &from_arena_);
}

ArenaBuffer::~ArenaBuffer() {
  if (!buffer_.empty() || from_arena_) {
    TensorArena::Global().Release(std::move(buffer_), from_arena_);
  }
}

ArenaBuffer::ArenaBuffer(ArenaBuffer&& other) noexcept
    : buffer_(std::move(other.buffer_)), from_arena_(other.from_arena_) {
  other.buffer_.clear();
  other.from_arena_ = false;
}

ArenaBuffer& ArenaBuffer::operator=(ArenaBuffer&& other) noexcept {
  if (this != &other) {
    if (!buffer_.empty() || from_arena_) {
      TensorArena::Global().Release(std::move(buffer_), from_arena_);
    }
    buffer_ = std::move(other.buffer_);
    from_arena_ = other.from_arena_;
    other.buffer_.clear();
    other.from_arena_ = false;
  }
  return *this;
}

}  // namespace resuformer
