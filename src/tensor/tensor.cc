#include "tensor/tensor.h"

#include <sstream>

#include "common/logging.h"
#include "tensor/arena.h"
#include "tensor/autograd.h"

namespace resuformer {

namespace {
thread_local bool g_grad_enabled = true;

int64_t ShapeProduct(const std::vector<int>& shape) {
  int64_t n = 1;
  for (int d : shape) {
    RF_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}
}  // namespace

TensorImpl::~TensorImpl() {
  // Recycle storage through the arena. Foreign buffers (FromData, plain
  // grads) are parked too — they just never touched the outstanding count.
  TensorArena& arena = TensorArena::Global();
  if (!data.empty() || data_from_arena) {
    arena.Release(std::move(data), data_from_arena);
  }
  if (!grad.empty()) arena.Release(std::move(grad), /*was_acquired=*/false);
}

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}
NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }
bool NoGradGuard::GradEnabled() { return g_grad_enabled; }

Tensor Tensor::Zeros(std::vector<int> shape, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->data =
      TensorArena::Global().Acquire(ShapeProduct(shape), &impl->data_from_arena);
  impl->shape = std::move(shape);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Full(std::vector<int> shape, float value, bool requires_grad) {
  Tensor t = Zeros(std::move(shape), requires_grad);
  for (int64_t i = 0; i < t.size(); ++i) t.data()[i] = value;
  return t;
}

Tensor Tensor::FromData(std::vector<int> shape, std::vector<float> data,
                        bool requires_grad) {
  RF_CHECK_EQ(ShapeProduct(shape), static_cast<int64_t>(data.size()));
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Randn(std::vector<int> shape, Rng* rng, float stddev,
                     bool requires_grad) {
  Tensor t = Zeros(std::move(shape), requires_grad);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Uniform(std::vector<int> shape, Rng* rng, float lo, float hi,
                       bool requires_grad) {
  Tensor t = Zeros(std::move(shape), requires_grad);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

const std::vector<int>& Tensor::shape() const {
  RF_CHECK(defined());
  return impl_->shape;
}

int Tensor::rank() const { return static_cast<int>(shape().size()); }

int Tensor::dim(int axis) const {
  RF_CHECK_LT(axis, rank());
  return impl_->shape[axis];
}

int64_t Tensor::size() const {
  RF_CHECK(defined());
  return impl_->size();
}

int Tensor::rows() const { return rank() == 1 ? 1 : dim(0); }
int Tensor::cols() const { return rank() == 1 ? dim(0) : dim(1); }

float* Tensor::data() {
  RF_CHECK(defined());
  return impl_->data_ptr();
}
const float* Tensor::data() const {
  RF_CHECK(defined());
  return impl_->data_ptr();
}

float* Tensor::grad() {
  RF_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad.data();
}
const float* Tensor::grad() const {
  RF_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad.data();
}

float& Tensor::at(int r, int c) {
  RF_CHECK_EQ(rank(), 2);
  return impl_->data_ptr()[static_cast<size_t>(r) * cols() + c];
}
float Tensor::at(int r, int c) const {
  RF_CHECK_EQ(rank(), 2);
  return impl_->data_ptr()[static_cast<size_t>(r) * cols() + c];
}
float& Tensor::at(int i) {
  RF_CHECK_EQ(rank(), 1);
  return impl_->data_ptr()[i];
}
float Tensor::at(int i) const {
  RF_CHECK_EQ(rank(), 1);
  return impl_->data_ptr()[i];
}

bool Tensor::requires_grad() const {
  RF_CHECK(defined());
  return impl_->requires_grad;
}

void Tensor::set_requires_grad(bool requires_grad) {
  RF_CHECK(defined());
  impl_->requires_grad = requires_grad;
  // The grad buffer stays unallocated until backward (or grad()) touches it:
  // an empty buffer is how optimizers recognize parameters that never
  // participated in a loss.
}

void Tensor::ZeroGrad() {
  RF_CHECK(defined());
  impl_->grad.assign(static_cast<size_t>(impl_->size()), 0.0f);
}

void Tensor::Backward() { RunBackward(impl_); }

Tensor Tensor::Detach() const {
  RF_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data.assign(impl_->data_ptr(), impl_->data_ptr() + impl_->size());
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

void Tensor::AttachExternalStorage(float* ptr, std::shared_ptr<void> owner) {
  RF_CHECK(defined());
  RF_CHECK(ptr != nullptr);
  TensorImpl* im = impl_.get();
  if (!im->data.empty() || im->data_from_arena) {
    TensorArena::Global().Release(std::move(im->data), im->data_from_arena);
    im->data.clear();
    im->data_from_arena = false;
  }
  im->external_data = ptr;
  im->external_owner = std::move(owner);
}

bool Tensor::has_external_storage() const {
  RF_CHECK(defined());
  return impl_->external_data != nullptr;
}

float Tensor::item() const {
  RF_CHECK_EQ(size(), 1);
  return impl_->data_ptr()[0];
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (int i = 0; i < rank(); ++i) {
    if (i > 0) os << ", ";
    os << impl_->shape[i];
  }
  os << "]";
  return os.str();
}

}  // namespace resuformer
